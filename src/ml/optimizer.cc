#include "ml/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

/// Touched-row indices in ascending order, so serialized sparse state is a
/// pure function of the logical state (map iteration order is not).
template <typename Map>
std::vector<size_t> SortedKeys(const Map& map) {
  std::vector<size_t> keys;
  keys.reserve(map.size());
  for (const auto& [row, unused] : map) keys.push_back(row);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void RowAdagrad::Step(Matrix& params, size_t row,
                      std::span<const float> grad) {
  StepSpan(params.Row(row), row, grad);
}

void RowAdagrad::StepSpan(std::span<float> params, size_t row,
                          std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  std::span<float> acc = accum_.Row(row);
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < params.size(); ++i) {
    acc[i] += grad[i] * grad[i];
    params[i] -= lr * grad[i] / (std::sqrt(acc[i]) + epsilon_);
  }
}

void DenseAdam::Step(Matrix& params, std::span<const float> grad) {
  StepSpan(params.Data(), grad);
}

void DenseAdam::StepSpan(std::span<float> params, std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  std::span<float> p = params;
  std::span<float> m = m_.Data();
  std::span<float> v = v_.Data();
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < p.size(); ++i) {
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
    float m_hat = static_cast<float>(m[i] / bias1);
    float v_hat = static_cast<float>(v[i] / bias2);
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void SgdStep(std::span<float> params, std::span<const float> grad,
             float learning_rate) {
  KELPIE_DCHECK(params.size() == grad.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i] -= learning_rate * grad[i];
  }
}

std::span<float> SparseRowAdagrad::AccumRow(size_t row) {
  KELPIE_DCHECK(row < rows_);
  std::vector<float>& acc = accum_[row];
  if (acc.empty()) acc.assign(cols_, 0.0f);
  return acc;
}

void SparseRowAdagrad::Step(Matrix& params, size_t row,
                            std::span<const float> grad) {
  StepSpan(params.Row(row), row, grad);
}

void SparseRowAdagrad::StepSpan(std::span<float> params, size_t row,
                                std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  // Identical arithmetic to RowAdagrad::StepSpan; only the accumulator
  // storage differs, and a freshly materialized row is the zeros a dense
  // accumulator row would hold at this point.
  std::span<float> acc = AccumRow(row);
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < params.size(); ++i) {
    acc[i] += grad[i] * grad[i];
    params[i] -= lr * grad[i] / (std::sqrt(acc[i]) + epsilon_);
  }
}

bool SparseRowAdagrad::AllFinite() const {
  for (const auto& [row, acc] : accum_) {
    for (float v : acc) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

std::string SparseRowAdagrad::SaveState() const {
  std::ostringstream os;
  if (!WriteU64(os, rows_).ok() || !WriteU64(os, cols_).ok() ||
      !WriteU64(os, accum_.size()).ok()) {
    return {};
  }
  for (size_t row : SortedKeys(accum_)) {
    if (!WriteU64(os, row).ok()) return {};
    if (!WriteFloats(os, accum_.at(row)).ok()) return {};
  }
  return std::move(os).str();
}

bool SparseRowAdagrad::RestoreState(std::string_view blob) {
  if (blob.empty()) {
    accum_.clear();
    return true;
  }
  std::istringstream in{std::string(blob)};
  uint64_t rows = 0, cols = 0, count = 0;
  if (!ReadU64(in, rows).ok() || !ReadU64(in, cols).ok() ||
      !ReadU64(in, count).ok()) {
    return false;
  }
  if (rows != rows_ || cols != cols_ || count > rows_) return false;
  std::unordered_map<size_t, std::vector<float>> restored;
  restored.reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0;
    std::vector<float> acc;
    if (!ReadU64(in, row).ok() || !ReadFloats(in, acc).ok()) return false;
    // Strictly ascending indices: rejects duplicates and non-canonical
    // encodings in one check.
    if (row >= rows_ || (i > 0 && row <= prev) || acc.size() != cols_) {
      return false;
    }
    prev = row;
    restored.emplace(static_cast<size_t>(row), std::move(acc));
  }
  accum_ = std::move(restored);
  return true;
}

SparseAdam::RowState& SparseAdam::StateRow(size_t row) {
  KELPIE_DCHECK(row < rows_);
  RowState& state = state_[row];
  if (state.m.empty()) {
    state.m.assign(cols_, 0.0f);
    state.v.assign(cols_, 0.0f);
  }
  return state;
}

int64_t SparseAdam::row_step_count(size_t row) const {
  auto it = state_.find(row);
  return it == state_.end() ? 0 : it->second.t;
}

void SparseAdam::Step(Matrix& params, size_t row,
                      std::span<const float> grad) {
  StepSpan(params.Row(row), row, grad);
}

void SparseAdam::StepSpan(std::span<float> params, size_t row,
                          std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  // Identical arithmetic to DenseAdam::StepSpan over a one-row state
  // matrix, with the step count advancing only when this row is touched
  // (lazy-Adam bias correction).
  RowState& state = StateRow(row);
  ++state.t;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(state.t));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(state.t));
  std::span<float> m = state.m;
  std::span<float> v = state.v;
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < params.size(); ++i) {
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
    float m_hat = static_cast<float>(m[i] / bias1);
    float v_hat = static_cast<float>(v[i] / bias2);
    params[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

bool SparseAdam::AllFinite() const {
  for (const auto& [row, state] : state_) {
    for (float x : state.m) {
      if (!std::isfinite(x)) return false;
    }
    for (float x : state.v) {
      if (!std::isfinite(x)) return false;
    }
  }
  return true;
}

std::string SparseAdam::SaveState() const {
  std::ostringstream os;
  if (!WriteU64(os, rows_).ok() || !WriteU64(os, cols_).ok() ||
      !WriteU64(os, state_.size()).ok()) {
    return {};
  }
  for (size_t row : SortedKeys(state_)) {
    const RowState& state = state_.at(row);
    if (!WriteU64(os, row).ok() ||
        !WriteU64(os, static_cast<uint64_t>(state.t)).ok() ||
        !WriteFloats(os, state.m).ok() || !WriteFloats(os, state.v).ok()) {
      return {};
    }
  }
  return std::move(os).str();
}

bool SparseAdam::RestoreState(std::string_view blob) {
  if (blob.empty()) {
    state_.clear();
    return true;
  }
  std::istringstream in{std::string(blob)};
  uint64_t rows = 0, cols = 0, count = 0;
  if (!ReadU64(in, rows).ok() || !ReadU64(in, cols).ok() ||
      !ReadU64(in, count).ok()) {
    return false;
  }
  if (rows != rows_ || cols != cols_ || count > rows_) return false;
  std::unordered_map<size_t, RowState> restored;
  restored.reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0, t = 0;
    RowState state;
    if (!ReadU64(in, row).ok() || !ReadU64(in, t).ok() ||
        !ReadFloats(in, state.m).ok() || !ReadFloats(in, state.v).ok()) {
      return false;
    }
    if (row >= rows_ || (i > 0 && row <= prev) || state.m.size() != cols_ ||
        state.v.size() != cols_ ||
        t > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return false;
    }
    prev = row;
    state.t = static_cast<int64_t>(t);
    restored.emplace(static_cast<size_t>(row), std::move(state));
  }
  state_ = std::move(restored);
  return true;
}

std::string ComposeSparseBlobs(const std::vector<std::string>& blobs) {
  std::ostringstream os;
  if (!WriteU64(os, blobs.size()).ok()) return {};
  for (const std::string& blob : blobs) {
    if (!WriteU64(os, blob.size()).ok()) return {};
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!os) return {};
  }
  return std::move(os).str();
}

bool SplitSparseBlobs(std::string_view blob, size_t expected,
                      std::vector<std::string>& out) {
  out.assign(expected, std::string());
  if (blob.empty()) return true;
  std::istringstream in{std::string(blob)};
  uint64_t count = 0;
  if (!ReadU64(in, count).ok() || count != expected) return false;
  for (size_t i = 0; i < expected; ++i) {
    uint64_t size = 0;
    if (!ReadU64(in, size).ok() || size > blob.size()) return false;
    out[i].resize(size);
    in.read(out[i].data(), static_cast<std::streamsize>(size));
    if (!in) return false;
  }
  // Trailing bytes mean the frame disagrees with its own count.
  return in.peek() == std::istringstream::traits_type::eof();
}

}  // namespace kelpie
