#ifndef KELPIE_ML_EMBEDDING_TABLE_H_
#define KELPIE_ML_EMBEDDING_TABLE_H_

#include <span>

#include "math/matrix.h"
#include "math/rng.h"

namespace kelpie {

/// Initialization schemes for embedding and weight matrices.
enum class InitScheme {
  /// N(0, scale).
  kNormal,
  /// U(-scale, scale).
  kUniform,
  /// Xavier/Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +...). The `scale`
  /// argument is ignored.
  kXavierUniform,
};

/// Fills `m` according to `scheme`; draws come from `rng` in row-major
/// order, so initialization is deterministic given the seed.
void InitMatrix(Matrix& m, InitScheme scheme, double scale, Rng& rng);

/// Fills a single row-like span; used to initialize mimic embeddings during
/// post-training exactly like ordinary entities are initialized in training.
void InitRow(std::span<float> row, InitScheme scheme, double scale, Rng& rng,
             size_t fan_in = 0, size_t fan_out = 0);

}  // namespace kelpie

#endif  // KELPIE_ML_EMBEDDING_TABLE_H_
