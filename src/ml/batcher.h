#ifndef KELPIE_ML_BATCHER_H_
#define KELPIE_ML_BATCHER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "math/rng.h"

namespace kelpie {

/// Produces shuffled mini-batches of indices into a sample array. One
/// instance is reused across epochs; Reshuffle() is called at each epoch
/// start. The final batch of an epoch may be smaller than `batch_size`.
class Batcher {
 public:
  Batcher(size_t num_samples, size_t batch_size)
      : batch_size_(batch_size == 0 ? 1 : batch_size), order_(num_samples) {
    for (size_t i = 0; i < num_samples; ++i) {
      order_[i] = i;
    }
  }

  /// Shuffles the visiting order and rewinds to the first batch. The order
  /// is re-derived from identity on every call, so an epoch's batches are a
  /// pure function of the RNG state — not of how many epochs ran before.
  /// (Shuffling the previous order in place would make the permutation
  /// depend on hidden accumulated state, which is exactly what breaks
  /// byte-identical checkpoint resume; a Fisher–Yates pass from any fixed
  /// starting arrangement is still a uniformly random permutation.)
  void Reshuffle(Rng& rng) {
    for (size_t i = 0; i < order_.size(); ++i) {
      order_[i] = i;
    }
    rng.Shuffle(order_);
    cursor_ = 0;
  }

  /// Returns the next batch of indices, or an empty span at epoch end.
  std::span<const size_t> NextBatch() {
    if (cursor_ >= order_.size()) {
      return {};
    }
    size_t count = std::min(batch_size_, order_.size() - cursor_);
    std::span<const size_t> batch(order_.data() + cursor_, count);
    cursor_ += count;
    return batch;
  }

  size_t num_batches() const {
    return (order_.size() + batch_size_ - 1) / batch_size_;
  }

 private:
  size_t batch_size_;
  size_t cursor_ = 0;
  std::vector<size_t> order_;
};

}  // namespace kelpie

#endif  // KELPIE_ML_BATCHER_H_
