#ifndef KELPIE_ML_TRAIN_GUARD_H_
#define KELPIE_ML_TRAIN_GUARD_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kelpie {

/// Guardrail knobs for one training run. Trainers populate this from the
/// robustness fields of TrainConfig (models/model.h); keeping a separate
/// struct here avoids an upward dependency from the ML substrate onto the
/// model layer.
struct GuardConfig {
  size_t epochs = 0;
  /// Off = plain epoch loop: no finiteness scans, no snapshots, no recovery.
  bool check_finite = true;
  /// On divergence, rewind and retry instead of aborting.
  bool recover_on_divergence = true;
  /// Rewind-and-retry budget per training run.
  int max_recoveries = 3;
  /// Learning-rate scale multiplier applied on each recovery.
  float lr_backoff = 0.5f;
};

/// One divergence-recovery incident during a guarded training run.
struct RecoveryEvent {
  /// Epoch (0-based) whose result was discarded.
  size_t epoch = 0;
  /// Learning-rate scale in effect for the retry (after backoff).
  float lr_scale = 1.0f;
  /// Human-readable cause ("non-finite loss", "non-finite parameters").
  std::string reason;
};

/// Outcome of a guarded training run; models retain the report of their
/// last Train() call for callers that want to inspect recovery behavior.
struct TrainReport {
  /// Total epoch executions, including discarded (retried) ones.
  size_t epochs_run = 0;
  /// Number of rewind-and-retry recoveries performed.
  int recoveries = 0;
  /// Final learning-rate scale (1.0 unless backoff was triggered).
  float lr_scale = 1.0f;
  std::vector<RecoveryEvent> events;
};

/// Callbacks a model trainer hands to RunGuardedEpochs. The guard owns the
/// epoch loop; the trainer owns the math.
struct GuardedTrainHooks {
  /// All mutable float state that one epoch can touch: embedding tables AND
  /// optimizer accumulators (Adagrad sums, Adam moments). The guard scans
  /// these for finiteness and snapshots/restores them on recovery; any span
  /// omitted here silently escapes the rewind.
  std::function<std::vector<std::span<float>>()> params;

  /// Runs one full training epoch with the learning rate scaled by
  /// `lr_scale` (1.0 on the happy path — multiplying by it must be a
  /// bitwise no-op to preserve seeded reproducibility). Returns a finite
  /// loss proxy for the epoch; NaN/Inf marks the epoch as diverged.
  std::function<double(size_t epoch, float lr_scale)> run_epoch;

  /// Optional: non-float optimizer state that must rewind with the
  /// parameters (e.g. Adam's step counter). Omit both when not needed.
  std::function<std::vector<uint64_t>()> save_counters;
  std::function<void(const std::vector<uint64_t>&)> restore_counters;
};

/// Runs `config.epochs` training epochs with divergence guardrails:
///
///  - After each epoch the loss proxy and every `params` span are checked
///    for finiteness (skipped entirely when `config.check_finite` is off).
///  - A finite epoch is committed: the guard snapshots all state in memory
///    and advances.
///  - A diverged epoch is rolled back to the last committed snapshot, the
///    learning-rate scale is multiplied by `config.lr_backoff`, and the
///    same epoch is retried — at most `config.max_recoveries` times per
///    run. Each recovery is logged as a warning and recorded in the report.
///  - If recovery is disabled (`config.recover_on_divergence == false`) or
///    the budget is exhausted, returns `Status::Aborted` and leaves the
///    parameters in the last committed (finite) state.
///
/// Test hook: failpoint `"train.diverge"` (value = epoch) poisons the first
/// parameter with NaN after that epoch runs, simulating a blow-up.
Result<TrainReport> RunGuardedEpochs(const GuardConfig& config,
                                     const GuardedTrainHooks& hooks);

}  // namespace kelpie

#endif  // KELPIE_ML_TRAIN_GUARD_H_
