#ifndef KELPIE_ML_TRAIN_GUARD_H_
#define KELPIE_ML_TRAIN_GUARD_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/status.h"
#include "math/rng.h"

namespace kelpie {

class TrainCheckpointer;

/// Guardrail knobs for one training run. Trainers populate this from the
/// robustness fields of TrainConfig (models/model.h); keeping a separate
/// struct here avoids an upward dependency from the ML substrate onto the
/// model layer.
struct GuardConfig {
  size_t epochs = 0;
  /// Off = plain epoch loop: no finiteness scans, no snapshots, no recovery.
  bool check_finite = true;
  /// On divergence, rewind and retry instead of aborting.
  bool recover_on_divergence = true;
  /// Rewind-and-retry budget per training run.
  int max_recoveries = 3;
  /// Learning-rate scale multiplier applied on each recovery.
  float lr_backoff = 0.5f;
  /// Optional crash-safe checkpointing (ml/checkpoint.h). Non-owning; when
  /// set, the guard restores state before the first epoch (resume or
  /// warm-start, per the checkpointer's mode) and persists state at commit
  /// boundaries, after recoveries, on cancellation and at completion.
  TrainCheckpointer* checkpointer = nullptr;
  /// Cooperative cancellation, checked at epoch boundaries: the in-flight
  /// epoch finishes and commits, a final checkpoint is flushed (when
  /// configured), and the guard returns a report with
  /// `completeness == kCancelled` — training's drain semantics, mirroring
  /// serve's SIGTERM drain.
  CancelToken cancel;
};

/// How a training run hands cancellation and checkpointing into Train().
/// Default-constructed = no checkpointing, never cancelled — exactly the
/// pre-checkpoint behavior.
struct TrainControl {
  TrainCheckpointer* checkpointer = nullptr;
  CancelToken cancel;
};

/// One divergence-recovery incident during a guarded training run.
struct RecoveryEvent {
  /// Epoch (0-based) whose result was discarded.
  size_t epoch = 0;
  /// Learning-rate scale in effect for the retry (after backoff).
  float lr_scale = 1.0f;
  /// Human-readable cause ("non-finite loss", "non-finite parameters").
  std::string reason;
};

/// Outcome of a guarded training run; models retain the report of their
/// last Train() call for callers that want to inspect recovery behavior.
struct TrainReport {
  /// Total epoch executions, including discarded (retried) ones. A resumed
  /// run restores this from the checkpoint, so the final report matches an
  /// uninterrupted run's.
  size_t epochs_run = 0;
  /// Number of rewind-and-retry recoveries performed.
  int recoveries = 0;
  /// Final learning-rate scale (1.0 unless backoff was triggered).
  float lr_scale = 1.0f;
  /// kComplete when all epochs ran; kCancelled when a cooperative cancel
  /// drained the run at an epoch boundary (the parameters are the last
  /// committed state and, with a checkpointer, a final checkpoint holds it).
  Completeness completeness = Completeness::kComplete;
  std::vector<RecoveryEvent> events;
};

/// Callbacks a model trainer hands to RunGuardedEpochs. The guard owns the
/// epoch loop; the trainer owns the math.
struct GuardedTrainHooks {
  /// All mutable float state that one epoch can touch: embedding tables AND
  /// optimizer accumulators (Adagrad sums, Adam moments). The guard scans
  /// these for finiteness and snapshots/restores them on recovery; any span
  /// omitted here silently escapes the rewind.
  std::function<std::vector<std::span<float>>()> params;

  /// Runs one full training epoch with the learning rate scaled by
  /// `lr_scale` (1.0 on the happy path — multiplying by it must be a
  /// bitwise no-op to preserve seeded reproducibility). Returns a finite
  /// loss proxy for the epoch; NaN/Inf marks the epoch as diverged.
  std::function<double(size_t epoch, float lr_scale)> run_epoch;

  /// Optional: non-float optimizer state that must rewind with the
  /// parameters (e.g. Adam's step counter). Omit both when not needed.
  std::function<std::vector<uint64_t>()> save_counters;
  std::function<void(const std::vector<uint64_t>&)> restore_counters;

  /// Optional: the training RNG stream position, captured at commit
  /// boundaries and restored on checkpoint resume. Required for
  /// byte-identical resume (shuffles and negative draws continue exactly
  /// where the interrupted run left off); omit both when the trainer is
  /// never checkpointed.
  std::function<RngState()> save_rng;
  std::function<void(const RngState&)> restore_rng;

  /// Optional: sparse optimizer state (TrainConfig::sparse_updates) whose
  /// storage grows as rows are touched and therefore cannot ride in the
  /// stable `params` spans. save_sparse returns a deterministic blob (the
  /// trainer typically composes its optimizers' SaveState outputs with
  /// ComposeSparseBlobs); restore_sparse applies one and must
  /// validate-before-mutate, returning false on any shape disagreement —
  /// the guard then treats a checkpoint restore as a shape mismatch and
  /// degrades to scratch. An empty blob restores fresh (no touched rows)
  /// state. The guard captures/rewinds the blob at exactly the boundaries
  /// it snapshots `params`, persists it in the checkpoint's "sparse"
  /// section, and consults sparse_finite alongside the `params` finiteness
  /// scan. Omit all three for dense-only trainers.
  std::function<std::string()> save_sparse;
  std::function<bool(const std::string&)> restore_sparse;
  std::function<bool()> sparse_finite;
};

/// Runs `config.epochs` training epochs with divergence guardrails:
///
///  - After each epoch the loss proxy and every `params` span are checked
///    for finiteness (skipped entirely when `config.check_finite` is off).
///  - A finite epoch is committed: the guard snapshots all state in memory
///    and advances.
///  - A diverged epoch is rolled back to the last committed snapshot, the
///    learning-rate scale is multiplied by `config.lr_backoff`, and the
///    same epoch is retried — at most `config.max_recoveries` times per
///    run. Each recovery is logged as a warning and recorded in the report.
///  - If recovery is disabled (`config.recover_on_divergence == false`) or
///    the budget is exhausted, returns `Status::Aborted` and leaves the
///    parameters in the last committed (finite) state.
///
/// Crash safety: with `config.checkpointer` set, the guard persists
/// (parameters, optimizer counters, RNG position, epoch counter, recovery
/// ledger) at every commit boundary the checkpoint interval selects, after
/// every recovery, on cancellation, and at completion — so a `kill -9` at
/// any point loses at most the epochs since the last checkpoint and a
/// resumed run converges to bitwise-identical final parameters. At a commit
/// boundary the rewind snapshot equals the live parameters, so the same
/// checkpoint also persists the last-good divergence-rewind target.
///
/// Test hooks:
///  - failpoint `"train.diverge"` (value = epoch) poisons the first
///    parameter with NaN after that epoch runs, simulating a blow-up.
///  - failpoint `"train.interrupt"` (value = epoch) aborts the run right
///    after that epoch's commit (and checkpoint save), simulating a crash
///    at a deterministic boundary.
Result<TrainReport> RunGuardedEpochs(const GuardConfig& config,
                                     const GuardedTrainHooks& hooks);

}  // namespace kelpie

#endif  // KELPIE_ML_TRAIN_GUARD_H_
