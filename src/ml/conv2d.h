#ifndef KELPIE_ML_CONV2D_H_
#define KELPIE_ML_CONV2D_H_

#include <cstddef>
#include <span>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"

namespace kelpie {

/// A single-input-channel 2D convolution with 'valid' padding and a
/// hand-written backward pass. This is the only neural layer ConvE needs:
/// the stacked head/relation embedding image is one channel, and the layer
/// produces `out_channels` feature maps.
///
/// Weight layout: `weights.Row(oc)` holds the oc-th kernel, row-major
/// (kernel_h * kernel_w floats). One bias per output channel.
class Conv2d {
 public:
  Conv2d() = default;

  /// Creates a layer for inputs of size `in_h` x `in_w`.
  Conv2d(size_t in_h, size_t in_w, size_t kernel_h, size_t kernel_w,
         size_t out_channels);

  /// Xavier-uniform init of weights; zero biases.
  void Init(Rng& rng);

  size_t in_h() const { return in_h_; }
  size_t in_w() const { return in_w_; }
  size_t out_h() const { return in_h_ - kernel_h_ + 1; }
  size_t out_w() const { return in_w_ - kernel_w_ + 1; }
  size_t out_channels() const { return out_channels_; }
  /// Total number of floats produced by Forward().
  size_t OutputSize() const { return out_channels_ * out_h() * out_w(); }

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

  /// Computes the convolution. `input` must be in_h*in_w floats; `output`
  /// must be OutputSize() floats, laid out channel-major.
  void Forward(std::span<const float> input, std::span<float> output) const;

  /// Backpropagates `grad_output` (same layout as Forward's output).
  /// Accumulates into `grad_weights` (same shape as weights), `grad_bias`
  /// and `grad_input` (in_h*in_w); all must be pre-sized, contents are
  /// added to (callers zero them per batch). Any of the grad outputs may be
  /// empty spans to skip that computation.
  void Backward(std::span<const float> input,
                std::span<const float> grad_output,
                std::span<float> grad_weights, std::span<float> grad_bias,
                std::span<float> grad_input) const;

 private:
  size_t in_h_ = 0, in_w_ = 0;
  size_t kernel_h_ = 0, kernel_w_ = 0;
  size_t out_channels_ = 0;
  Matrix weights_;            // out_channels x (kernel_h * kernel_w)
  std::vector<float> bias_;   // out_channels
};

/// Fully connected layer out = W * in + b with hand-written backward.
class DenseLayer {
 public:
  DenseLayer() = default;
  DenseLayer(size_t in_size, size_t out_size);

  void Init(Rng& rng);

  size_t in_size() const { return in_size_; }
  size_t out_size() const { return out_size_; }

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

  /// output = W * input + b. `output` must be out_size floats.
  void Forward(std::span<const float> input, std::span<float> output) const;

  /// Accumulates gradients; empty spans skip the corresponding output.
  /// `grad_weights` is row-major out_size x in_size.
  void Backward(std::span<const float> input,
                std::span<const float> grad_output,
                std::span<float> grad_weights, std::span<float> grad_bias,
                std::span<float> grad_input) const;

 private:
  size_t in_size_ = 0, out_size_ = 0;
  Matrix weights_;           // out_size x in_size
  std::vector<float> bias_;  // out_size
};

/// In-place ReLU; returns nothing, mask recoverable from the activations.
void ReluInPlace(std::span<float> x);

/// Backward of ReLU given the *activations* (post-ReLU values): zeroes the
/// gradient where the activation is zero.
void ReluBackward(std::span<const float> activations, std::span<float> grad);

}  // namespace kelpie

#endif  // KELPIE_ML_CONV2D_H_
