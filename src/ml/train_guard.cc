#include "ml/train_guard.h"

#include <cmath>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"

namespace kelpie {

namespace {

bool AllFinite(const std::vector<std::span<float>>& spans) {
  for (std::span<float> s : spans) {
    for (float v : s) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

void TakeSnapshot(const std::vector<std::span<float>>& spans,
                  std::vector<std::vector<float>>& snapshot) {
  snapshot.resize(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    snapshot[i].assign(spans[i].begin(), spans[i].end());
  }
}

void RestoreSnapshot(const std::vector<std::vector<float>>& snapshot,
                     const std::vector<std::span<float>>& spans) {
  for (size_t i = 0; i < spans.size(); ++i) {
    std::copy(snapshot[i].begin(), snapshot[i].end(), spans[i].begin());
  }
}

}  // namespace

Result<TrainReport> RunGuardedEpochs(const GuardConfig& config,
                                     const GuardedTrainHooks& hooks) {
  TrainReport report;

  if (!config.check_finite) {
    // Guardrails off: plain epoch loop, zero overhead, no recovery.
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      hooks.run_epoch(epoch, /*lr_scale=*/1.0f);
      ++report.epochs_run;
    }
    return report;
  }

  std::vector<std::span<float>> params = hooks.params();
  std::vector<std::vector<float>> snapshot;
  std::vector<uint64_t> counters;
  TakeSnapshot(params, snapshot);
  if (hooks.save_counters) counters = hooks.save_counters();

  float lr_scale = 1.0f;
  int recoveries_left = config.max_recoveries;

  for (size_t epoch = 0; epoch < config.epochs;) {
    double loss = hooks.run_epoch(epoch, lr_scale);
    ++report.epochs_run;

    if (failpoint::Fire("train.diverge", epoch) && !params.empty() &&
        !params[0].empty()) {
      params[0][0] = std::numeric_limits<float>::quiet_NaN();
    }

    const char* reason = nullptr;
    if (!std::isfinite(loss)) {
      reason = "non-finite loss";
    } else if (!AllFinite(params)) {
      reason = "non-finite parameters";
    }

    if (reason == nullptr) {
      // Epoch committed: this state is the new rewind target.
      TakeSnapshot(params, snapshot);
      if (hooks.save_counters) counters = hooks.save_counters();
      ++epoch;
      continue;
    }

    if (!config.recover_on_divergence || recoveries_left <= 0) {
      RestoreSnapshot(snapshot, params);
      if (hooks.restore_counters) hooks.restore_counters(counters);
      std::string msg = "training diverged at epoch " + std::to_string(epoch) +
                        " (" + reason + ")";
      if (config.recover_on_divergence) {
        msg += " after " + std::to_string(config.max_recoveries) +
               " recovery attempts";
      } else {
        msg += "; recovery disabled";
      }
      return Status::Aborted(std::move(msg));
    }

    RestoreSnapshot(snapshot, params);
    if (hooks.restore_counters) hooks.restore_counters(counters);
    --recoveries_left;
    lr_scale *= config.lr_backoff;
    ++report.recoveries;
    report.events.push_back(
        {epoch, lr_scale, reason});
    KELPIE_LOG(Warning) << "training diverged at epoch " << epoch << " ("
                        << reason << "); rewound to last finite state, "
                        << "retrying with lr_scale=" << lr_scale << " ("
                        << recoveries_left << " recoveries left)";
  }

  report.lr_scale = lr_scale;
  return report;
}

}  // namespace kelpie
