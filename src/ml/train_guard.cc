#include "ml/train_guard.h"

#include <cmath>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace kelpie {

namespace {

/// Per-training-run metric handles, resolved once at RunGuardedEpochs entry
/// (registry lookup is a cold, locked path; epoch-loop updates are not).
struct TrainMetrics {
  metrics::Counter& epochs;
  metrics::Counter& recoveries;
  metrics::Gauge& loss_last;
  metrics::Histogram& epoch_seconds;

  static TrainMetrics Resolve() {
    metrics::Registry& registry = metrics::Registry::Global();
    return TrainMetrics{
        registry.GetCounter(
            "kelpie_train_epochs_total", {},
            metrics::Determinism::kDeterministic,
            "Training epochs executed, including retried (discarded) ones."),
        registry.GetCounter(
            "kelpie_train_recoveries_total", {},
            metrics::Determinism::kDeterministic,
            "Divergence recoveries (rewind + lr backoff) during training."),
        registry.GetGauge(
            "kelpie_train_loss_last", {},
            metrics::Determinism::kDeterministic,
            "Loss proxy of the most recently executed epoch."),
        registry.GetHistogram(
            "kelpie_train_epoch_seconds",
            metrics::ExponentialBuckets(0.001, 4.0, 12), {},
            metrics::Determinism::kWallClock,
            "Wall-clock seconds per training epoch."),
    };
  }
};

bool AllFinite(const std::vector<std::span<float>>& spans) {
  for (std::span<float> s : spans) {
    for (float v : s) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

void TakeSnapshot(const std::vector<std::span<float>>& spans,
                  std::vector<std::vector<float>>& snapshot) {
  snapshot.resize(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    snapshot[i].assign(spans[i].begin(), spans[i].end());
  }
}

void RestoreSnapshot(const std::vector<std::vector<float>>& snapshot,
                     const std::vector<std::span<float>>& spans) {
  for (size_t i = 0; i < spans.size(); ++i) {
    std::copy(snapshot[i].begin(), snapshot[i].end(), spans[i].begin());
  }
}

}  // namespace

Result<TrainReport> RunGuardedEpochs(const GuardConfig& config,
                                     const GuardedTrainHooks& hooks) {
  TrainReport report;
  TrainMetrics train_metrics = TrainMetrics::Resolve();
  trace::Span train_span("train");

  if (!config.check_finite) {
    // Guardrails off: plain epoch loop, no finiteness scans, no recovery.
    // The observability updates per epoch are two relaxed stores and one
    // histogram observe — noise against an epoch of gradient math.
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      Stopwatch epoch_timer;
      const double loss = hooks.run_epoch(epoch, /*lr_scale=*/1.0f);
      train_metrics.epoch_seconds.Observe(epoch_timer.ElapsedSeconds());
      train_metrics.epochs.Increment();
      train_metrics.loss_last.Set(loss);
      ++report.epochs_run;
    }
    return report;
  }

  std::vector<std::span<float>> params = hooks.params();
  std::vector<std::vector<float>> snapshot;
  std::vector<uint64_t> counters;
  TakeSnapshot(params, snapshot);
  if (hooks.save_counters) counters = hooks.save_counters();

  float lr_scale = 1.0f;
  int recoveries_left = config.max_recoveries;

  for (size_t epoch = 0; epoch < config.epochs;) {
    Stopwatch epoch_timer;
    double loss = hooks.run_epoch(epoch, lr_scale);
    train_metrics.epoch_seconds.Observe(epoch_timer.ElapsedSeconds());
    train_metrics.epochs.Increment();
    train_metrics.loss_last.Set(loss);
    ++report.epochs_run;

    if (failpoint::Fire("train.diverge", epoch) && !params.empty() &&
        !params[0].empty()) {
      params[0][0] = std::numeric_limits<float>::quiet_NaN();
    }

    const char* reason = nullptr;
    if (!std::isfinite(loss)) {
      reason = "non-finite loss";
    } else if (!AllFinite(params)) {
      reason = "non-finite parameters";
    }

    if (reason == nullptr) {
      // Epoch committed: this state is the new rewind target.
      TakeSnapshot(params, snapshot);
      if (hooks.save_counters) counters = hooks.save_counters();
      ++epoch;
      continue;
    }

    if (!config.recover_on_divergence || recoveries_left <= 0) {
      RestoreSnapshot(snapshot, params);
      if (hooks.restore_counters) hooks.restore_counters(counters);
      std::string msg = "training diverged at epoch " + std::to_string(epoch) +
                        " (" + reason + ")";
      if (config.recover_on_divergence) {
        msg += " after " + std::to_string(config.max_recoveries) +
               " recovery attempts";
      } else {
        msg += "; recovery disabled";
      }
      return Status::Aborted(std::move(msg));
    }

    RestoreSnapshot(snapshot, params);
    if (hooks.restore_counters) hooks.restore_counters(counters);
    train_metrics.recoveries.Increment();
    --recoveries_left;
    lr_scale *= config.lr_backoff;
    ++report.recoveries;
    report.events.push_back(
        {epoch, lr_scale, reason});
    KELPIE_LOG(Warning) << "training diverged at epoch " << epoch << " ("
                        << reason << "); rewound to last finite state, "
                        << "retrying with lr_scale=" << lr_scale << " ("
                        << recoveries_left << " recoveries left)";
  }

  report.lr_scale = lr_scale;
  return report;
}

}  // namespace kelpie
