#include "ml/train_guard.h"

#include <cmath>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "ml/checkpoint.h"

namespace kelpie {

namespace {

/// Per-training-run metric handles, resolved once at RunGuardedEpochs entry
/// (registry lookup is a cold, locked path; epoch-loop updates are not).
struct TrainMetrics {
  metrics::Counter& epochs;
  metrics::Counter& recoveries;
  metrics::Gauge& loss_last;
  metrics::Histogram& epoch_seconds;

  static TrainMetrics Resolve() {
    metrics::Registry& registry = metrics::Registry::Global();
    return TrainMetrics{
        registry.GetCounter(
            "kelpie_train_epochs_total", {},
            metrics::Determinism::kDeterministic,
            "Training epochs executed, including retried (discarded) ones."),
        registry.GetCounter(
            "kelpie_train_recoveries_total", {},
            metrics::Determinism::kDeterministic,
            "Divergence recoveries (rewind + lr backoff) during training."),
        registry.GetGauge(
            "kelpie_train_loss_last", {},
            metrics::Determinism::kDeterministic,
            "Loss proxy of the most recently executed epoch."),
        registry.GetHistogram(
            "kelpie_train_epoch_seconds",
            metrics::ExponentialBuckets(0.001, 4.0, 12), {},
            metrics::Determinism::kWallClock,
            "Wall-clock seconds per training epoch."),
    };
  }
};

bool AllFinite(const std::vector<std::span<float>>& spans) {
  for (std::span<float> s : spans) {
    for (float v : s) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

void TakeSnapshot(const std::vector<std::span<float>>& spans,
                  std::vector<std::vector<float>>& snapshot) {
  snapshot.resize(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    snapshot[i].assign(spans[i].begin(), spans[i].end());
  }
}

void RestoreSnapshot(const std::vector<std::vector<float>>& snapshot,
                     const std::vector<std::span<float>>& spans) {
  for (size_t i = 0; i < spans.size(); ++i) {
    std::copy(snapshot[i].begin(), snapshot[i].end(), spans[i].begin());
  }
}

/// Attempts a checkpoint restore (resume or warm start, per the
/// checkpointer's mode) and applies it to the live trainer state. Returns
/// the epoch the loop should start at (0 when nothing was restored or on
/// warm start). Every failure path degrades to scratch.
size_t MaybeRestoreCheckpoint(const GuardConfig& config,
                              const GuardedTrainHooks& hooks,
                              const std::vector<std::span<float>>& params,
                              TrainReport& report, float& lr_scale,
                              int& recoveries_left) {
  TrainCheckpointer* ckpt = config.checkpointer;
  if (ckpt == nullptr) return 0;
  std::optional<CheckpointState> state = ckpt->TryRestore();
  if (!state.has_value()) return 0;

  bool shapes_ok = state->params.size() == params.size();
  for (size_t i = 0; shapes_ok && i < params.size(); ++i) {
    shapes_ok = state->params[i].size() == params[i].size();
  }
  if (shapes_ok && hooks.save_counters) {
    shapes_ok = state->counters.size() == hooks.save_counters().size();
  }
  if (shapes_ok && !state->sparse.empty() && !hooks.restore_sparse) {
    // A checkpoint carrying sparse optimizer state cannot resume a trainer
    // that has nowhere to put it.
    shapes_ok = false;
  }
  if (!shapes_ok) {
    ckpt->NoteShapeMismatch();
    KELPIE_LOG(Warning) << "checkpoint " << ckpt->FilePath()
                        << ": parameter shapes disagree with this model; "
                        << "restarting training from scratch";
    return 0;
  }
  if (hooks.restore_sparse && !hooks.restore_sparse(state->sparse)) {
    // restore_sparse validates before mutating, so degrading here leaves
    // the live trainer state untouched.
    ckpt->NoteShapeMismatch();
    KELPIE_LOG(Warning) << "checkpoint " << ckpt->FilePath()
                        << ": sparse optimizer state disagrees with this "
                        << "model; restarting training from scratch";
    return 0;
  }

  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(state->params[i].begin(), state->params[i].end(),
              params[i].begin());
  }
  if (hooks.restore_counters && !state->counters.empty()) {
    hooks.restore_counters(state->counters);
  }
  if (ckpt->options().mode != CheckpointMode::kResume) {
    // Warm start: base parameters and optimizer state only; the epoch
    // counter, RNG stream and recovery ledger start fresh.
    return 0;
  }
  if (hooks.restore_rng) hooks.restore_rng(state->rng);
  report = state->report;
  // Completeness describes *this* run: a checkpoint written by a drained
  // (cancelled) run must not make its successful resume report Cancelled.
  report.completeness = Completeness::kComplete;
  lr_scale = state->lr_scale;
  recoveries_left = static_cast<int>(state->recoveries_left);
  size_t start = static_cast<size_t>(state->next_epoch);
  return start < config.epochs ? start : config.epochs;
}

/// Persists the last committed state. A failed save costs durability, not
/// the run: it is logged and training continues.
void SaveCheckpoint(const GuardConfig& config, const GuardedTrainHooks& hooks,
                    uint64_t next_epoch, float lr_scale, int recoveries_left,
                    const TrainReport& report,
                    const std::vector<std::vector<float>>& committed_params,
                    const std::vector<uint64_t>& counters,
                    const std::string& sparse) {
  TrainCheckpointer* ckpt = config.checkpointer;
  if (ckpt == nullptr || !ckpt->saves_enabled()) return;
  CheckpointState state;
  state.next_epoch = next_epoch;
  state.lr_scale = lr_scale;
  state.recoveries_left = recoveries_left;
  state.report = report;
  if (hooks.save_rng) state.rng = hooks.save_rng();
  state.counters = counters;
  state.params = committed_params;
  state.sparse = sparse;
  Status saved = ckpt->Save(state);
  if (!saved.ok()) {
    KELPIE_LOG(Warning) << "checkpoint save to " << ckpt->FilePath()
                        << " failed (training continues without durability): "
                        << saved.ToString();
  }
}

}  // namespace

Result<TrainReport> RunGuardedEpochs(const GuardConfig& config,
                                     const GuardedTrainHooks& hooks) {
  TrainReport report;
  TrainMetrics train_metrics = TrainMetrics::Resolve();
  trace::Span train_span("train");

  if (!config.check_finite) {
    // Guardrails off: plain epoch loop, no finiteness scans, no recovery.
    // Checkpointing and cooperative cancellation still apply — crash safety
    // is orthogonal to divergence protection. The observability updates per
    // epoch are two relaxed stores and one histogram observe — noise
    // against an epoch of gradient math.
    std::vector<std::span<float>> params = hooks.params();
    float lr_scale = 1.0f;
    int recoveries_left = config.max_recoveries;
    const size_t start_epoch = MaybeRestoreCheckpoint(
        config, hooks, params, report, lr_scale, recoveries_left);
    std::vector<std::vector<float>> committed;
    std::vector<uint64_t> counters;
    std::string sparse;
    auto persist = [&](size_t next_epoch) {
      TakeSnapshot(params, committed);
      if (hooks.save_counters) counters = hooks.save_counters();
      if (hooks.save_sparse) sparse = hooks.save_sparse();
      SaveCheckpoint(config, hooks, next_epoch, lr_scale, recoveries_left,
                     report, committed, counters, sparse);
    };
    for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
      if (config.cancel.cancelled()) {
        report.completeness = Completeness::kCancelled;
        persist(epoch);
        return report;
      }
      Stopwatch epoch_timer;
      const double loss = hooks.run_epoch(epoch, /*lr_scale=*/1.0f);
      train_metrics.epoch_seconds.Observe(epoch_timer.ElapsedSeconds());
      train_metrics.epochs.Increment();
      train_metrics.loss_last.Set(loss);
      ++report.epochs_run;
      if (config.checkpointer != nullptr &&
          (config.checkpointer->ShouldSave(epoch + 1) ||
           epoch + 1 == config.epochs)) {
        persist(epoch + 1);
      }
      if (failpoint::Fire("train.interrupt", epoch)) {
        return Status::Aborted("train.interrupt failpoint fired after epoch " +
                               std::to_string(epoch));
      }
    }
    return report;
  }

  std::vector<std::span<float>> params = hooks.params();
  float lr_scale = 1.0f;
  int recoveries_left = config.max_recoveries;
  const size_t start_epoch = MaybeRestoreCheckpoint(
      config, hooks, params, report, lr_scale, recoveries_left);

  std::vector<std::vector<float>> snapshot;
  std::vector<uint64_t> counters;
  std::string sparse_snapshot;
  TakeSnapshot(params, snapshot);
  if (hooks.save_counters) counters = hooks.save_counters();
  if (hooks.save_sparse) sparse_snapshot = hooks.save_sparse();

  for (size_t epoch = start_epoch; epoch < config.epochs;) {
    if (config.cancel.cancelled()) {
      // Drain: the last committed epoch stands; flush it so the run can be
      // resumed, and report the truncation honestly.
      report.completeness = Completeness::kCancelled;
      report.lr_scale = lr_scale;
      SaveCheckpoint(config, hooks, epoch, lr_scale, recoveries_left, report,
                     snapshot, counters, sparse_snapshot);
      return report;
    }

    Stopwatch epoch_timer;
    double loss = hooks.run_epoch(epoch, lr_scale);
    train_metrics.epoch_seconds.Observe(epoch_timer.ElapsedSeconds());
    train_metrics.epochs.Increment();
    train_metrics.loss_last.Set(loss);
    ++report.epochs_run;

    if (failpoint::Fire("train.diverge", epoch) && !params.empty() &&
        !params[0].empty()) {
      params[0][0] = std::numeric_limits<float>::quiet_NaN();
    }

    const char* reason = nullptr;
    if (!std::isfinite(loss)) {
      reason = "non-finite loss";
    } else if (!AllFinite(params)) {
      reason = "non-finite parameters";
    } else if (hooks.sparse_finite && !hooks.sparse_finite()) {
      reason = "non-finite sparse optimizer state";
    }

    if (reason == nullptr) {
      // Epoch committed: this state is the new rewind target. At this
      // boundary snapshot == live parameters, so persisting the snapshot
      // persists both the model and the last-good recovery target.
      TakeSnapshot(params, snapshot);
      if (hooks.save_counters) counters = hooks.save_counters();
      if (hooks.save_sparse) sparse_snapshot = hooks.save_sparse();
      ++epoch;
      if (config.checkpointer != nullptr &&
          (config.checkpointer->ShouldSave(epoch) ||
           epoch == config.epochs)) {
        SaveCheckpoint(config, hooks, epoch, lr_scale, recoveries_left,
                       report, snapshot, counters, sparse_snapshot);
      }
      if (failpoint::Fire("train.interrupt", epoch - 1)) {
        return Status::Aborted("train.interrupt failpoint fired after epoch " +
                               std::to_string(epoch - 1));
      }
      continue;
    }

    if (!config.recover_on_divergence || recoveries_left <= 0) {
      RestoreSnapshot(snapshot, params);
      if (hooks.restore_counters) hooks.restore_counters(counters);
      if (hooks.restore_sparse) hooks.restore_sparse(sparse_snapshot);
      std::string msg = "training diverged at epoch " + std::to_string(epoch) +
                        " (" + reason + ")";
      if (config.recover_on_divergence) {
        msg += " after " + std::to_string(config.max_recoveries) +
               " recovery attempts";
      } else {
        msg += "; recovery disabled";
      }
      return Status::Aborted(std::move(msg));
    }

    RestoreSnapshot(snapshot, params);
    if (hooks.restore_counters) hooks.restore_counters(counters);
    if (hooks.restore_sparse) hooks.restore_sparse(sparse_snapshot);
    train_metrics.recoveries.Increment();
    --recoveries_left;
    lr_scale *= config.lr_backoff;
    ++report.recoveries;
    report.events.push_back(
        {epoch, lr_scale, reason});
    KELPIE_LOG(Warning) << "training diverged at epoch " << epoch << " ("
                        << reason << "); rewound to last finite state, "
                        << "retrying with lr_scale=" << lr_scale << " ("
                        << recoveries_left << " recoveries left)";
    // The updated recovery ledger (and the rewound state it protects) is
    // itself worth surviving a crash.
    SaveCheckpoint(config, hooks, epoch, lr_scale, recoveries_left, report,
                   snapshot, counters, sparse_snapshot);
  }

  report.lr_scale = lr_scale;
  return report;
}

}  // namespace kelpie
