#ifndef KELPIE_ML_NEGATIVE_SAMPLING_H_
#define KELPIE_ML_NEGATIVE_SAMPLING_H_

#include <vector>

#include "kgraph/graph.h"
#include "kgraph/triple.h"
#include "math/rng.h"

namespace kelpie {

/// Negative-sample generator for pairwise-ranking training (TransE).
/// Corrupts the head or the tail of a positive triple with a uniformly
/// drawn entity; with `filtered` set, corruptions that produce a known
/// training fact are rejected and re-drawn (bounded retries).
class NegativeSampler {
 public:
  /// `graph` is the training graph used for filtering; it must outlive the
  /// sampler.
  NegativeSampler(const GraphIndex& graph, bool filtered)
      : graph_(graph), filtered_(filtered) {}

  /// Returns a corruption of `positive`. `corrupt_tail` selects which side
  /// to replace; the replacement is guaranteed to differ from the original
  /// entity on that side.
  Triple Corrupt(const Triple& positive, bool corrupt_tail, Rng& rng) const;

  /// Bernoulli(0.5) choice of side, then Corrupt().
  Triple CorruptEitherSide(const Triple& positive, Rng& rng) const;

  /// Fills `out` (cleared first) with `count` corruptions, drawn exactly as
  /// `count` sequential Corrupt() calls would draw them — same RNG
  /// consumption, same triples. Lets training loops separate the sampling
  /// of a negatives batch from its scoring without changing results.
  void CorruptBatch(const Triple& positive, bool corrupt_tail, size_t count,
                    Rng& rng, std::vector<Triple>& out) const;

  /// Batch form of CorruptEitherSide(), with the same RNG-order guarantee.
  void CorruptEitherSideBatch(const Triple& positive, size_t count, Rng& rng,
                              std::vector<Triple>& out) const;

 private:
  const GraphIndex& graph_;
  bool filtered_;
};

}  // namespace kelpie

#endif  // KELPIE_ML_NEGATIVE_SAMPLING_H_
