#include "ml/conv2d.h"

#include "common/logging.h"
#include "math/simd.h"
#include "math/vec.h"
#include "ml/embedding_table.h"

namespace kelpie {

Conv2d::Conv2d(size_t in_h, size_t in_w, size_t kernel_h, size_t kernel_w,
               size_t out_channels)
    : in_h_(in_h),
      in_w_(in_w),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      out_channels_(out_channels),
      weights_(out_channels, kernel_h * kernel_w),
      bias_(out_channels, 0.0f) {
  KELPIE_CHECK(kernel_h <= in_h && kernel_w <= in_w);
}

void Conv2d::Init(Rng& rng) {
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    InitRow(weights_.Row(oc), InitScheme::kXavierUniform, 0.0, rng,
            kernel_h_ * kernel_w_, out_h() * out_w());
  }
  std::fill(bias_.begin(), bias_.end(), 0.0f);
}

void Conv2d::Forward(std::span<const float> input,
                     std::span<float> output) const {
  KELPIE_DCHECK(input.size() == in_h_ * in_w_);
  KELPIE_DCHECK(output.size() == OutputSize());
  const size_t oh = out_h();
  const size_t ow = out_w();
  size_t out_idx = 0;
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    std::span<const float> kernel = weights_.Row(oc);
    const float b = bias_[oc];
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x) {
        float acc = b;
        for (size_t ky = 0; ky < kernel_h_; ++ky) {
          const float* in_row = input.data() + (y + ky) * in_w_ + x;
          const float* k_row = kernel.data() + ky * kernel_w_;
          for (size_t kx = 0; kx < kernel_w_; ++kx) {
            acc += k_row[kx] * in_row[kx];
          }
        }
        output[out_idx++] = acc;
      }
    }
  }
}

void Conv2d::Backward(std::span<const float> input,
                      std::span<const float> grad_output,
                      std::span<float> grad_weights,
                      std::span<float> grad_bias,
                      std::span<float> grad_input) const {
  KELPIE_DCHECK(input.size() == in_h_ * in_w_);
  KELPIE_DCHECK(grad_output.size() == OutputSize());
  const size_t oh = out_h();
  const size_t ow = out_w();
  const size_t ksize = kernel_h_ * kernel_w_;
  size_t out_idx = 0;
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    std::span<const float> kernel = weights_.Row(oc);
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x) {
        const float g = grad_output[out_idx++];
        if (g == 0.0f) continue;
        if (!grad_bias.empty()) {
          grad_bias[oc] += g;
        }
        for (size_t ky = 0; ky < kernel_h_; ++ky) {
          const size_t in_off = (y + ky) * in_w_ + x;
          const size_t k_off = ky * kernel_w_;
          for (size_t kx = 0; kx < kernel_w_; ++kx) {
            if (!grad_weights.empty()) {
              grad_weights[oc * ksize + k_off + kx] += g * input[in_off + kx];
            }
            if (!grad_input.empty()) {
              grad_input[in_off + kx] += g * kernel[k_off + kx];
            }
          }
        }
      }
    }
  }
}

DenseLayer::DenseLayer(size_t in_size, size_t out_size)
    : in_size_(in_size),
      out_size_(out_size),
      weights_(out_size, in_size),
      bias_(out_size, 0.0f) {}

void DenseLayer::Init(Rng& rng) {
  for (size_t o = 0; o < out_size_; ++o) {
    InitRow(weights_.Row(o), InitScheme::kXavierUniform, 0.0, rng, in_size_,
            out_size_);
  }
  std::fill(bias_.begin(), bias_.end(), 0.0f);
}

void DenseLayer::Forward(std::span<const float> input,
                         std::span<float> output) const {
  KELPIE_DCHECK(input.size() == in_size_);
  KELPIE_DCHECK(output.size() == out_size_);
  // Blocked gemv over the weight rows; bias_[o] + dot == dot + bias_[o]
  // (float add is commutative), so this matches the per-row form bit for
  // bit.
  simd::GemvRowMajor(weights_.Data().data(), out_size_, in_size_,
                     input.data(), output.data());
  simd::Axpy(1.0f, bias_, output);
}

void DenseLayer::Backward(std::span<const float> input,
                          std::span<const float> grad_output,
                          std::span<float> grad_weights,
                          std::span<float> grad_bias,
                          std::span<float> grad_input) const {
  KELPIE_DCHECK(grad_output.size() == out_size_);
  for (size_t o = 0; o < out_size_; ++o) {
    const float g = grad_output[o];
    if (g == 0.0f) continue;
    if (!grad_bias.empty()) {
      grad_bias[o] += g;
    }
    std::span<const float> w_row = weights_.Row(o);
    for (size_t i = 0; i < in_size_; ++i) {
      if (!grad_weights.empty()) {
        grad_weights[o * in_size_ + i] += g * input[i];
      }
      if (!grad_input.empty()) {
        grad_input[i] += g * w_row[i];
      }
    }
  }
}

void ReluInPlace(std::span<float> x) {
  for (float& v : x) {
    if (v < 0.0f) v = 0.0f;
  }
}

void ReluBackward(std::span<const float> activations, std::span<float> grad) {
  KELPIE_DCHECK(activations.size() == grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    if (activations[i] <= 0.0f) grad[i] = 0.0f;
  }
}

}  // namespace kelpie
