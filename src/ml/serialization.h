#ifndef KELPIE_ML_SERIALIZATION_H_
#define KELPIE_ML_SERIALIZATION_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace kelpie {

/// Binary (de)serialization primitives for model parameters. All writers
/// emit little-endian plain-old-data with explicit size headers; readers
/// validate sizes and report corruption as Status errors instead of
/// crashing.

/// Writes a 64-bit size followed by raw floats.
Status WriteFloats(std::ostream& out, std::span<const float> values);

/// Reads a float array written by WriteFloats into `values` (resized).
/// `max_count` guards against corrupt headers.
Status ReadFloats(std::istream& in, std::vector<float>& values,
                  size_t max_count = (1ull << 30));

/// Writes rows, cols and the row-major payload.
Status WriteMatrix(std::ostream& out, const Matrix& m);

/// Reads a matrix written by WriteMatrix; shape is restored from the
/// stream.
Status ReadMatrix(std::istream& in, Matrix& m);

/// Writes/reads a 64-bit unsigned scalar.
Status WriteU64(std::ostream& out, uint64_t value);
Status ReadU64(std::istream& in, uint64_t& value);

/// Writes/reads a length-prefixed string.
Status WriteString(std::ostream& out, std::string_view s);
Status ReadString(std::istream& in, std::string& s, size_t max_len = 4096);

}  // namespace kelpie

#endif  // KELPIE_ML_SERIALIZATION_H_
