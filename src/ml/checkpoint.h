#ifndef KELPIE_ML_CHECKPOINT_H_
#define KELPIE_ML_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "math/rng.h"
#include "ml/train_guard.h"

namespace kelpie {

/// -----------------------------------------------------------------------
/// Crash-safe training checkpoints.
///
/// A checkpoint captures everything that determines a guarded training
/// run's future at an epoch-commit boundary: every parameter span the
/// trainer exposes (embedding tables AND optimizer accumulators/moments —
/// at a commit boundary this equals the divergence-rewind snapshot, so one
/// section persists both), the non-float optimizer counters (Adam step
/// counts), the sparse optimizer blob (touched-row Adagrad/Adam state when
/// TrainConfig::sparse_updates is on — format v2's fifth section; v1 files
/// without it still restore, with fresh sparse state), the RNG stream
/// position, the epoch counter and the full recovery ledger (lr_scale,
/// remaining recovery budget, recorded events).
/// Resuming from it therefore converges to final parameters bitwise
/// identical to an uninterrupted run — the same guarantee class as the
/// experiment journal's replay.
///
/// Durability discipline: one file (`train.ckpt` in the configured
/// directory), CRC32C-framed sections, written through WriteFileAtomic —
/// a crash at any point leaves the previous checkpoint intact or the new
/// one complete, never a torn mix. Reads degrade, never error: a missing
/// file, torn tail, bit flip, partial section or stale config fingerprint
/// all restart training from scratch (or from the last good checkpoint the
/// atomic write preserved) with a warning.
///
/// Failpoints (see failpoint.h), mirroring the relevance cache's
/// corruption matrix:
///   "checkpoint.partial_write" — the serialized image is truncated
///       mid-section before the (still atomic) write; simulates a crash
///       while serializing state.
///   "checkpoint.bit_flip"     — one byte of the params section payload is
///       flipped before the write; simulates silent media corruption.
///   "checkpoint.stale_config" — the stored (on save) or expected (on
///       load) fingerprint is XOR-perturbed; simulates resuming against a
///       checkpoint from a different model/config/dataset/seed.
/// -----------------------------------------------------------------------

/// How restored state is applied by the guard.
enum class CheckpointMode : uint8_t {
  /// Full resume: parameters, counters, RNG, epoch counter and recovery
  /// ledger are restored and training continues at the next epoch. The
  /// config fingerprint must match. Checkpoints keep being written.
  kResume = 0,
  /// Warm start: only parameters and optimizer counters are restored; the
  /// epoch counter, RNG and ledger start fresh, so a (typically shorter)
  /// post-training schedule runs on top of the base state. Deliberately
  /// crosses configs/datasets, so the fingerprint is not checked — shape
  /// agreement (verified by the guard) is the only gate. Load-only: warm
  /// runs never overwrite the base checkpoint.
  kWarmStart = 1,
};

struct CheckpointOptions {
  /// Directory holding `train.ckpt`; created on the first save.
  std::string directory;
  /// Persist every N committed epochs (>= 1). Recoveries, cancellation and
  /// completion always checkpoint regardless of the interval.
  size_t interval_epochs = 1;
  /// Attempt to restore on guard entry. False = start from scratch but
  /// still write checkpoints (a fresh `--checkpoint DIR` run).
  bool resume = false;
  CheckpointMode mode = CheckpointMode::kResume;
  /// Fingerprint of the training setup (model kind, TrainConfig, dataset,
  /// seed — see ComputeTrainFingerprint in models/model_store.h). A
  /// mismatch on kResume restore degrades to scratch.
  uint64_t fingerprint = 0;
};

/// Why the last TryRestore produced (or did not produce) state; surfaced on
/// the CLI and asserted by the corruption-matrix tests.
enum class CheckpointRestoreOutcome : uint8_t {
  kNotAttempted = 0,  ///< resume not requested
  kNoFile,            ///< nothing on disk — scratch
  kRestored,          ///< full state loaded
  kCorrupt,           ///< DataLoss (torn/flipped/partial) — scratch
  kStaleConfig,       ///< fingerprint mismatch — scratch
  kShapeMismatch,     ///< parameter spans disagree — scratch
};

/// Stable human-readable name ("Restored", "StaleConfig", ...).
std::string_view CheckpointRestoreOutcomeName(CheckpointRestoreOutcome o);

/// Everything RunGuardedEpochs needs to continue a run, as captured at an
/// epoch-commit boundary.
struct CheckpointState {
  /// First epoch the resumed run executes (== committed epochs so far).
  uint64_t next_epoch = 0;
  /// Learning-rate scale in effect (after any divergence backoffs).
  float lr_scale = 1.0f;
  /// Remaining rewind-and-retry budget.
  int64_t recoveries_left = 0;
  /// Running report, including the recovery event ledger.
  TrainReport report;
  /// RNG stream position right after the last committed epoch.
  RngState rng;
  /// Non-float optimizer counters (GuardedTrainHooks::save_counters).
  std::vector<uint64_t> counters;
  /// One entry per hooks.params() span, same order and sizes.
  std::vector<std::vector<float>> params;
  /// Opaque sparse optimizer blob (GuardedTrainHooks::save_sparse); empty
  /// for dense-only trainers and for files written before the sparse
  /// section existed (format v1, still accepted on read).
  std::string sparse;
};

/// Serializer/deserializer for one training run's checkpoint file. Owned by
/// the caller (CLI, xp pipeline) and handed to Train() via TrainControl;
/// the guard drives TryRestore/Save at the right boundaries.
class TrainCheckpointer {
 public:
  explicit TrainCheckpointer(CheckpointOptions options);

  const CheckpointOptions& options() const { return options_; }
  /// `<directory>/train.ckpt`.
  std::string FilePath() const;

  /// Loads and validates the checkpoint file. Returns std::nullopt — never
  /// an error — when resume was not requested, the file is missing, any
  /// section fails its CRC or bounds (torn tail, bit flip, partial
  /// section), or the fingerprint is stale; the outcome is recorded for
  /// last_restore_outcome() and a warning is logged for the degradations.
  std::optional<CheckpointState> TryRestore();

  /// True when the guard should persist after `completed_epochs` commits
  /// (interval boundary). Recovery/cancel/final saves bypass this.
  bool ShouldSave(uint64_t completed_epochs) const;

  /// Warm starts are load-only; everything else persists.
  bool saves_enabled() const {
    return options_.mode == CheckpointMode::kResume;
  }

  /// Serializes `state` and writes it atomically. A failed save costs
  /// durability, not the run: callers log the status and keep training.
  Status Save(const CheckpointState& state);

  CheckpointRestoreOutcome last_restore_outcome() const { return outcome_; }
  /// next_epoch of the restored state (0 unless outcome is kRestored).
  uint64_t restored_epoch() const { return restored_epoch_; }

  /// The guard reports a span-shape disagreement between restored state and
  /// the live trainer (degrades to scratch).
  void NoteShapeMismatch() {
    outcome_ = CheckpointRestoreOutcome::kShapeMismatch;
    restored_epoch_ = 0;
  }

 private:
  CheckpointOptions options_;
  CheckpointRestoreOutcome outcome_ = CheckpointRestoreOutcome::kNotAttempted;
  uint64_t restored_epoch_ = 0;
};

}  // namespace kelpie

#endif  // KELPIE_ML_CHECKPOINT_H_
