#include "ml/serialization.h"

namespace kelpie {

Status WriteU64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  if (!out) return Status::IoError("write failed (u64)");
  return Status::Ok();
}

Status ReadU64(std::istream& in, uint64_t& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) return Status::IoError("read failed (u64)");
  return Status::Ok();
}

Status WriteString(std::ostream& out, std::string_view s) {
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!out) return Status::IoError("write failed (string)");
  return Status::Ok();
}

Status ReadString(std::istream& in, std::string& s, size_t max_len) {
  uint64_t len = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, len));
  if (len > max_len) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds limit (corrupt stream?)");
  }
  s.resize(len);
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) return Status::IoError("read failed (string payload)");
  return Status::Ok();
}

Status WriteFloats(std::ostream& out, std::span<const float> values) {
  KELPIE_RETURN_IF_ERROR(WriteU64(out, values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
  if (!out) return Status::IoError("write failed (float payload)");
  return Status::Ok();
}

Status ReadFloats(std::istream& in, std::vector<float>& values,
                  size_t max_count) {
  uint64_t count = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, count));
  if (count > max_count) {
    return Status::InvalidArgument("float count " + std::to_string(count) +
                                   " exceeds limit (corrupt stream?)");
  }
  values.resize(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) return Status::IoError("read failed (float payload)");
  return Status::Ok();
}

Status WriteMatrix(std::ostream& out, const Matrix& m) {
  KELPIE_RETURN_IF_ERROR(WriteU64(out, m.rows()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, m.cols()));
  out.write(reinterpret_cast<const char*>(m.Data().data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!out) return Status::IoError("write failed (matrix payload)");
  return Status::Ok();
}

Status ReadMatrix(std::istream& in, Matrix& m) {
  uint64_t rows = 0, cols = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, rows));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, cols));
  if (rows > (1ull << 24) || cols > (1ull << 24) ||
      rows * cols > (1ull << 30)) {
    return Status::InvalidArgument("matrix shape " + std::to_string(rows) +
                                   "x" + std::to_string(cols) +
                                   " exceeds limits (corrupt stream?)");
  }
  m.Reset(rows, cols);
  in.read(reinterpret_cast<char*>(m.Data().data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) return Status::IoError("read failed (matrix payload)");
  return Status::Ok();
}

}  // namespace kelpie
