#include "ml/negative_sampling.h"

namespace kelpie {

Triple NegativeSampler::Corrupt(const Triple& positive, bool corrupt_tail,
                                Rng& rng) const {
  const size_t n = graph_.num_entities();
  // Bounded retries: on pathological graphs (everything known) fall back to
  // the last draw rather than looping forever.
  constexpr int kMaxRetries = 32;
  Triple corrupted = positive;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    EntityId replacement = static_cast<EntityId>(rng.UniformUint64(n));
    if (corrupt_tail) {
      if (replacement == positive.tail) continue;
      corrupted.tail = replacement;
    } else {
      if (replacement == positive.head) continue;
      corrupted.head = replacement;
    }
    if (!filtered_ || !graph_.Contains(corrupted)) {
      return corrupted;
    }
  }
  return corrupted;
}

Triple NegativeSampler::CorruptEitherSide(const Triple& positive,
                                          Rng& rng) const {
  return Corrupt(positive, rng.Bernoulli(0.5), rng);
}

void NegativeSampler::CorruptBatch(const Triple& positive, bool corrupt_tail,
                                   size_t count, Rng& rng,
                                   std::vector<Triple>& out) const {
  out.clear();
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Corrupt(positive, corrupt_tail, rng));
  }
}

void NegativeSampler::CorruptEitherSideBatch(const Triple& positive,
                                             size_t count, Rng& rng,
                                             std::vector<Triple>& out) const {
  out.clear();
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(CorruptEitherSide(positive, rng));
  }
}

}  // namespace kelpie
