#ifndef KELPIE_ML_OPTIMIZER_H_
#define KELPIE_ML_OPTIMIZER_H_

#include <cstddef>
#include <span>

#include "math/matrix.h"

namespace kelpie {

/// Per-row Adagrad state for sparse embedding updates. Each parameter keeps
/// an accumulated squared gradient; rows that never receive gradients pay no
/// cost. This is the optimizer the ComplEx/DistMult trainers use (following
/// Lacroix et al.'s canonical-decomposition setup).
class RowAdagrad {
 public:
  RowAdagrad() = default;

  /// Allocates accumulators shaped like `params`.
  RowAdagrad(size_t rows, size_t cols, float learning_rate,
             float epsilon = 1e-8f)
      : accum_(rows, cols), learning_rate_(learning_rate), epsilon_(epsilon) {}

  /// Applies one Adagrad step to `params` row `row` with gradient `grad`.
  void Step(Matrix& params, size_t row, std::span<const float> grad);

  /// Applies a step to an arbitrary parameter span using accumulator row
  /// `row` (used for mimic rows, which live outside the main table).
  void StepSpan(std::span<float> params, size_t row,
                std::span<const float> grad);

  float learning_rate() const { return learning_rate_; }

  /// Scales the effective learning rate (guarded training backs this off
  /// after a divergence). 1.0 is a bitwise no-op.
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  /// Accumulator state, exposed so guarded training can snapshot/rewind it
  /// together with the parameters it conditions.
  std::span<float> AccumData() { return accum_.Data(); }

 private:
  Matrix accum_;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float epsilon_ = 1e-8f;
};

/// Dense Adam optimizer for a single parameter matrix; used for the ConvE
/// convolution/FC weights and, with a 1-row matrix, for bias vectors.
class DenseAdam {
 public:
  DenseAdam() = default;

  DenseAdam(size_t rows, size_t cols, float learning_rate,
            float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f)
      : m_(rows, cols),
        v_(rows, cols),
        learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  /// Applies one Adam step. `grad` must have the same total size as the
  /// parameter matrix.
  void Step(Matrix& params, std::span<const float> grad);

  /// Applies one Adam step to a flat parameter span (e.g. a bias vector);
  /// the state matrix must have been sized to match.
  void StepSpan(std::span<float> params, std::span<const float> grad);

  /// See RowAdagrad::set_lr_scale.
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  /// Moment state and step counter, exposed for guarded-training
  /// snapshot/rewind (the counter must rewind with the moments or the bias
  /// correction desynchronizes).
  std::span<float> MomentMData() { return m_.Data(); }
  std::span<float> MomentVData() { return v_.Data(); }
  int64_t step_count() const { return t_; }
  void set_step_count(int64_t t) { t_ = t; }

 private:
  Matrix m_;
  Matrix v_;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float beta1_ = 0.9f;
  float beta2_ = 0.999f;
  float epsilon_ = 1e-8f;
  int64_t t_ = 0;
};

/// Plain SGD helper: params -= lr * grad. TransE's original optimizer.
void SgdStep(std::span<float> params, std::span<const float> grad,
             float learning_rate);

}  // namespace kelpie

#endif  // KELPIE_ML_OPTIMIZER_H_
