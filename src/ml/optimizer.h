#ifndef KELPIE_ML_OPTIMIZER_H_
#define KELPIE_ML_OPTIMIZER_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "math/matrix.h"

namespace kelpie {

/// Per-row Adagrad state for sparse embedding updates. Each parameter keeps
/// an accumulated squared gradient; rows that never receive gradients pay no
/// cost. This is the optimizer the ComplEx/DistMult trainers use (following
/// Lacroix et al.'s canonical-decomposition setup).
class RowAdagrad {
 public:
  RowAdagrad() = default;

  /// Allocates accumulators shaped like `params`.
  RowAdagrad(size_t rows, size_t cols, float learning_rate,
             float epsilon = 1e-8f)
      : accum_(rows, cols), learning_rate_(learning_rate), epsilon_(epsilon) {}

  /// Applies one Adagrad step to `params` row `row` with gradient `grad`.
  void Step(Matrix& params, size_t row, std::span<const float> grad);

  /// Applies a step to an arbitrary parameter span using accumulator row
  /// `row` (used for mimic rows, which live outside the main table).
  void StepSpan(std::span<float> params, size_t row,
                std::span<const float> grad);

  float learning_rate() const { return learning_rate_; }

  /// Scales the effective learning rate (guarded training backs this off
  /// after a divergence). 1.0 is a bitwise no-op.
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  /// Accumulator state, exposed so guarded training can snapshot/rewind it
  /// together with the parameters it conditions.
  std::span<float> AccumData() { return accum_.Data(); }

 private:
  Matrix accum_;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float epsilon_ = 1e-8f;
};

/// Dense Adam optimizer for a single parameter matrix; used for the ConvE
/// convolution/FC weights and, with a 1-row matrix, for bias vectors.
class DenseAdam {
 public:
  DenseAdam() = default;

  DenseAdam(size_t rows, size_t cols, float learning_rate,
            float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f)
      : m_(rows, cols),
        v_(rows, cols),
        learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  /// Applies one Adam step. `grad` must have the same total size as the
  /// parameter matrix.
  void Step(Matrix& params, std::span<const float> grad);

  /// Applies one Adam step to a flat parameter span (e.g. a bias vector);
  /// the state matrix must have been sized to match.
  void StepSpan(std::span<float> params, std::span<const float> grad);

  /// See RowAdagrad::set_lr_scale.
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  /// Moment state and step counter, exposed for guarded-training
  /// snapshot/rewind (the counter must rewind with the moments or the bias
  /// correction desynchronizes).
  std::span<float> MomentMData() { return m_.Data(); }
  std::span<float> MomentVData() { return v_.Data(); }
  int64_t step_count() const { return t_; }
  void set_step_count(int64_t t) { t_ = t; }

 private:
  Matrix m_;
  Matrix v_;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float beta1_ = 0.9f;
  float beta2_ = 0.999f;
  float epsilon_ = 1e-8f;
  int64_t t_ = 0;
};

/// Plain SGD helper: params -= lr * grad. TransE's original optimizer.
void SgdStep(std::span<float> params, std::span<const float> grad,
             float learning_rate);

/// -----------------------------------------------------------------------
/// Sparse optimizer state (DESIGN.md §16).
///
/// The dense optimizers above allocate state for every row of the table
/// they condition, even though one batch (and especially one mimic
/// post-training) touches a handful of rows. The sparse variants keep
/// per-row state in an index-keyed map that materializes a row the first
/// time it receives a gradient. A freshly materialized row starts at
/// zeros — exactly the state its dense counterpart holds before the first
/// gradient — and the per-element update replicates the dense StepSpan
/// arithmetic operation for operation, so sparse and dense training
/// produce byte-identical parameters, and touched rows hold byte-identical
/// accumulator values; untouched rows simply have no storage (which is
/// the bit-exact preservation of their all-zeros dense state).
///
/// Because the storage grows as rows are touched, sparse state cannot be
/// exposed to the training guard as stable float spans the way AccumData()
/// is. Instead each sparse optimizer serializes to / restores from a
/// deterministic blob (rows ordered by index), which the guard snapshots,
/// rewinds and checkpoints through the save_sparse/restore_sparse hooks
/// (ml/train_guard.h) and the checkpoint's "sparse" section.
/// -----------------------------------------------------------------------

/// Sparse counterpart of RowAdagrad.
class SparseRowAdagrad {
 public:
  SparseRowAdagrad() = default;

  /// `rows`/`cols` bound the legal row indices and fix the row width; no
  /// accumulator storage is allocated until a row is touched.
  SparseRowAdagrad(size_t rows, size_t cols, float learning_rate,
                   float epsilon = 1e-8f)
      : rows_(rows),
        cols_(cols),
        learning_rate_(learning_rate),
        epsilon_(epsilon) {}

  /// Same step arithmetic as RowAdagrad::Step, against lazily materialized
  /// accumulator storage.
  void Step(Matrix& params, size_t row, std::span<const float> grad);
  void StepSpan(std::span<float> params, size_t row,
                std::span<const float> grad);

  float learning_rate() const { return learning_rate_; }
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Rows that have received at least one gradient (== map entries).
  size_t touched_rows() const { return accum_.size(); }

  /// True when every materialized accumulator value is finite (untouched
  /// rows are zero by definition).
  bool AllFinite() const;

  /// Deterministic serialization: shape header + touched rows ordered by
  /// index. Two optimizers holding the same logical state produce the same
  /// bytes regardless of map iteration order or touch history.
  std::string SaveState() const;

  /// Parses and applies a SaveState blob. Validates fully before mutating:
  /// on a malformed blob or a shape mismatch, returns false and leaves the
  /// current state untouched. An empty blob clears all touched rows (the
  /// state of a fresh optimizer).
  bool RestoreState(std::string_view blob);

 private:
  std::span<float> AccumRow(size_t row);

  size_t rows_ = 0;
  size_t cols_ = 0;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float epsilon_ = 1e-8f;
  std::unordered_map<size_t, std::vector<float>> accum_;
};

/// Sparse per-row Adam. Each touched row carries its own first/second
/// moments AND its own step count: bias correction advances only when the
/// row is stepped, which is the standard "lazy Adam" semantics for
/// embedding tables (a dense Adam over the whole table would decay the
/// moments of untouched rows and is not what embedding training wants).
/// The per-row step arithmetic mirrors DenseAdam::StepSpan bit for bit, so
/// a SparseAdam row stepped k times equals a one-row DenseAdam stepped k
/// times, byte for byte.
class SparseAdam {
 public:
  SparseAdam() = default;

  SparseAdam(size_t rows, size_t cols, float learning_rate,
             float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f)
      : rows_(rows),
        cols_(cols),
        learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  void Step(Matrix& params, size_t row, std::span<const float> grad);
  void StepSpan(std::span<float> params, size_t row,
                std::span<const float> grad);

  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t touched_rows() const { return state_.size(); }
  /// Step count of `row` (0 when never touched).
  int64_t row_step_count(size_t row) const;

  bool AllFinite() const;
  /// See SparseRowAdagrad::SaveState/RestoreState; the blob additionally
  /// carries each row's step count next to its moments.
  std::string SaveState() const;
  bool RestoreState(std::string_view blob);

 private:
  struct RowState {
    std::vector<float> m;
    std::vector<float> v;
    int64_t t = 0;
  };

  RowState& StateRow(size_t row);

  size_t rows_ = 0;
  size_t cols_ = 0;
  float learning_rate_ = 0.0f;
  float lr_scale_ = 1.0f;
  float beta1_ = 0.9f;
  float beta2_ = 0.999f;
  float epsilon_ = 1e-8f;
  std::unordered_map<size_t, RowState> state_;
};

/// Construction-time dispatch between RowAdagrad and SparseRowAdagrad —
/// the seam the model trainers sit on so TrainConfig::sparse_updates flips
/// storage behavior without forking the gradient code. The step arithmetic
/// is identical on both sides; only the guard integration differs (dense
/// exposes an accumulator span, sparse exposes the blob hooks).
class EmbeddingAdagrad {
 public:
  EmbeddingAdagrad() = default;

  EmbeddingAdagrad(bool sparse, size_t rows, size_t cols, float learning_rate,
                   float epsilon = 1e-8f)
      : sparse_(sparse) {
    if (sparse_) {
      sparse_opt_ = SparseRowAdagrad(rows, cols, learning_rate, epsilon);
    } else {
      dense_opt_ = RowAdagrad(rows, cols, learning_rate, epsilon);
    }
  }

  void Step(Matrix& params, size_t row, std::span<const float> grad) {
    if (sparse_) {
      sparse_opt_.Step(params, row, grad);
    } else {
      dense_opt_.Step(params, row, grad);
    }
  }
  void StepSpan(std::span<float> params, size_t row,
                std::span<const float> grad) {
    if (sparse_) {
      sparse_opt_.StepSpan(params, row, grad);
    } else {
      dense_opt_.StepSpan(params, row, grad);
    }
  }

  void set_lr_scale(float scale) {
    if (sparse_) {
      sparse_opt_.set_lr_scale(scale);
    } else {
      dense_opt_.set_lr_scale(scale);
    }
  }

  bool sparse() const { return sparse_; }

  /// Dense accumulator span for GuardedTrainHooks::params. Empty in sparse
  /// mode — sparse state travels through the blob hooks instead.
  std::span<float> DenseAccumData() {
    return sparse_ ? std::span<float>{} : dense_opt_.AccumData();
  }

  /// Sparse-state guard hooks; trivial in dense mode (empty blob, any
  /// restore of an empty blob succeeds) so trainers can wire them
  /// unconditionally.
  std::string SaveSparseState() const {
    return sparse_ ? sparse_opt_.SaveState() : std::string();
  }
  bool RestoreSparseState(std::string_view blob) {
    return sparse_ ? sparse_opt_.RestoreState(blob) : blob.empty();
  }
  bool SparseFinite() const { return sparse_ ? sparse_opt_.AllFinite() : true; }

  size_t touched_rows() const {
    return sparse_ ? sparse_opt_.touched_rows() : 0;
  }

 private:
  bool sparse_ = false;
  RowAdagrad dense_opt_;
  SparseRowAdagrad sparse_opt_;
};

/// Length-frames several per-optimizer sparse blobs into the single blob a
/// trainer hands the guard (save_sparse hook / checkpoint "sparse"
/// section). A vector of empty blobs composes to a canonical form that
/// SplitSparseBlobs round-trips exactly.
std::string ComposeSparseBlobs(const std::vector<std::string>& blobs);

/// Inverse of ComposeSparseBlobs. Returns false (leaving `out` unspecified)
/// on a malformed frame or when the blob does not hold exactly `expected`
/// parts. An entirely empty input yields `expected` empty parts — the
/// representation of fresh (or dense-mode) optimizer state.
bool SplitSparseBlobs(std::string_view blob, size_t expected,
                      std::vector<std::string>& out);

}  // namespace kelpie

#endif  // KELPIE_ML_OPTIMIZER_H_
