#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/line_protocol.h"

namespace kelpie {
namespace serve {

namespace {

/// SplitMix64 finalizer, for the deterministic retry jitter.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ConnectionOutcome {
  Status status = Status::Ok();
  /// False when the connect itself failed (nothing was sent).
  bool connected = false;
  /// Complete response lines, in arrival order. The server answers each
  /// connection FIFO, so responses[k] answers the k-th line written.
  std::vector<std::string> responses;
};

/// Writes `lines` to a fresh connection, half-closes the write side, and
/// collects complete response lines until the server closes its side. A
/// trailing partial line (server died mid-response) is discarded — its
/// request counts as unanswered and gets retried.
ConnectionOutcome DriveConnection(const ClientOptions& options,
                                  const std::vector<std::string>& lines) {
  ConnectionOutcome out;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    out.status = Status::IoError(std::string("socket: ") + std::strerror(errno));
    return out;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    out.status = Status::InvalidArgument("bad host: " + options.host);
    return out;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    out.status = Status::Unavailable("connect " + options.host + ":" +
                                     std::to_string(options.port) + ": " +
                                     std::strerror(errno));
    return out;
  }
  out.connected = true;

  // Reader in a separate thread so a full server send buffer can never
  // deadlock against our (blocking) writes.
  std::string received;
  std::thread reader([fd, &received] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      received.append(chunk, static_cast<size_t>(n));
    }
  });

  // One send for the whole batch: pipelined control sequences (e.g.
  // shutdown followed by health) reach the server in one read, so a
  // draining server still answers every line it received.
  std::string wire;
  for (const std::string& line : lines) {
    wire += line;
    wire.push_back('\n');
  }
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      out.status = Status::Unavailable("connection broke mid-request");
      break;
    }
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  reader.join();
  ::close(fd);

  size_t start = 0;
  size_t newline;
  while ((newline = received.find('\n', start)) != std::string::npos) {
    if (newline > start) {
      out.responses.push_back(received.substr(start, newline - start));
    }
    start = newline + 1;
  }
  return out;
}

/// A shed response is the retriable error: the server refused admission
/// under load, and idempotent (deterministic) requests are safe to replay.
/// Deliberate rejections — DeadlineExceeded from shed_after, InvalidArgument,
/// parse errors — are final answers.
bool IsRetriableResponse(const std::string& line) {
  return line.find("\"ok\":false") != std::string::npos &&
         line.find("\"code\":\"Unavailable\"") != std::string::npos;
}

struct PendingRequest {
  std::string line;
  /// Send attempts so far (a request may be sent 1 + max_retries times).
  size_t sends = 0;
  bool done = false;
  /// Last response observed (a shed error, kept if retries run out).
  std::string last_response;
};

struct ShardCounters {
  size_t retries = 0;
  size_t exhausted = 0;
};

/// Runs one connection's shard to completion: send the open requests,
/// positionally match responses, retry shed/reset requests with capped
/// exponential backoff and deterministic jitter until they resolve or
/// exhaust their budget.
ShardCounters DriveShard(const ClientOptions& options, size_t shard,
                         std::vector<PendingRequest>& pending) {
  ShardCounters counters;
  for (size_t round = 0;; ++round) {
    std::vector<size_t> open;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!pending[i].done) open.push_back(i);
    }
    if (open.empty()) return counters;
    if (round > 0) {
      // Capped exponential backoff. The jitter factor in [0.5, 1.0) is a
      // pure function of (seed, shard, round): replays are reproducible,
      // while distinct shards still decorrelate their retry bursts.
      double delay = options.retry_backoff_seconds;
      for (size_t r = 1; r < round; ++r) delay *= 2.0;
      if (delay > options.retry_backoff_cap_seconds) {
        delay = options.retry_backoff_cap_seconds;
      }
      const uint64_t u = Mix64(options.retry_seed ^
                               (shard * 0x9e3779b97f4a7c15ULL) ^ round);
      const double jitter =
          0.5 + 0.5 * (static_cast<double>(u >> 11) * 0x1.0p-53);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(delay * jitter));
    }

    std::vector<std::string> lines;
    lines.reserve(open.size());
    for (size_t i : open) {
      lines.push_back(pending[i].line);
      ++pending[i].sends;
    }
    ConnectionOutcome out = DriveConnection(options, lines);

    for (size_t k = 0; k < open.size(); ++k) {
      PendingRequest& request = pending[open[k]];
      const bool answered = k < out.responses.size();
      if (answered && !IsRetriableResponse(out.responses[k])) {
        request.done = true;
        request.last_response = out.responses[k];
        continue;
      }
      if (answered) request.last_response = out.responses[k];
      // Shed, reset before a response, or never connected: retriable.
      if (request.sends > options.max_retries) {
        request.done = true;
        ++counters.exhausted;
        if (request.last_response.empty()) {
          Status reason =
              out.connected
                  ? Status::Unavailable("retries exhausted: connection reset "
                                        "before a response arrived")
                  : Status::Unavailable("retries exhausted: " +
                                        out.status.message());
          request.last_response =
              ErrorResponseLine(PeekLineId(request.line), reason);
        }
      } else {
        ++counters.retries;
      }
    }
  }
}

}  // namespace

Result<ClientBatchResult> RunClientBatch(
    const ClientOptions& options, const std::vector<std::string>& lines) {
  sockaddr_in probe{};
  if (::inet_pton(AF_INET, options.host.c_str(), &probe.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + options.host);
  }
  const size_t connections =
      std::max<size_t>(1, std::min(options.connections,
                                   std::max<size_t>(1, lines.size())));
  std::vector<std::vector<PendingRequest>> shards(connections);
  for (size_t i = 0; i < lines.size(); ++i) {
    shards[i % connections].push_back(PendingRequest{lines[i]});
  }

  std::vector<ShardCounters> counters(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back(
        [&, c] { counters[c] = DriveShard(options, c, shards[c]); });
  }
  for (std::thread& t : threads) t.join();

  ClientBatchResult result;
  result.responses.reserve(lines.size());
  for (size_t c = 0; c < connections; ++c) {
    result.retries += counters[c].retries;
    result.exhausted += counters[c].exhausted;
    for (PendingRequest& request : shards[c]) {
      result.responses.push_back(std::move(request.last_response));
    }
  }
  std::stable_sort(result.responses.begin(), result.responses.end(),
                   [](const std::string& a, const std::string& b) {
                     const uint64_t ia = PeekLineId(a);
                     const uint64_t ib = PeekLineId(b);
                     if (ia != ib) return ia < ib;
                     return a < b;
                   });
  return result;
}

}  // namespace serve
}  // namespace kelpie
