#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/line_protocol.h"

namespace kelpie {
namespace serve {

namespace {

struct ConnectionOutcome {
  Status status = Status::Ok();
  std::vector<std::string> responses;
};

/// Writes `lines` to a fresh connection, half-closes the write side, and
/// collects response lines until the server closes its side.
ConnectionOutcome DriveConnection(const ClientOptions& options,
                                  const std::vector<std::string>& lines) {
  ConnectionOutcome out;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    out.status = Status::IoError(std::string("socket: ") + std::strerror(errno));
    return out;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    out.status = Status::InvalidArgument("bad host: " + options.host);
    return out;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    out.status = Status::IoError("connect " + options.host + ":" +
                                 std::to_string(options.port) + ": " +
                                 std::strerror(errno));
    return out;
  }

  // Reader in a separate thread so a full server send buffer can never
  // deadlock against our (blocking) writes.
  std::string received;
  std::thread reader([fd, &received] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      received.append(chunk, static_cast<size_t>(n));
    }
  });

  for (const std::string& line : lines) {
    std::string wire = line;
    wire.push_back('\n');
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        out.status = Status::IoError("connection broke mid-request");
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (!out.status.ok()) break;
  }
  ::shutdown(fd, SHUT_WR);
  reader.join();
  ::close(fd);
  if (!out.status.ok()) return out;

  size_t start = 0;
  while (start < received.size()) {
    size_t end = received.find('\n', start);
    if (end == std::string::npos) end = received.size();
    if (end > start) out.responses.push_back(received.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

Result<std::vector<std::string>> RunClientBatch(
    const ClientOptions& options, const std::vector<std::string>& lines) {
  const size_t connections =
      std::max<size_t>(1, std::min(options.connections,
                                   std::max<size_t>(1, lines.size())));
  std::vector<std::vector<std::string>> shards(connections);
  for (size_t i = 0; i < lines.size(); ++i) {
    shards[i % connections].push_back(lines[i]);
  }

  std::vector<ConnectionOutcome> outcomes(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      outcomes[c] = DriveConnection(options, shards[c]);
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<std::string> all;
  for (ConnectionOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
    for (std::string& line : outcome.responses) all.push_back(std::move(line));
  }
  if (all.size() != lines.size()) {
    return Status::IoError("response count mismatch: sent " +
                           std::to_string(lines.size()) + " lines, got " +
                           std::to_string(all.size()) + " responses");
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const std::string& a, const std::string& b) {
                     const uint64_t ia = PeekLineId(a);
                     const uint64_t ib = PeekLineId(b);
                     if (ia != ib) return ia < ib;
                     return a < b;
                   });
  return all;
}

}  // namespace serve
}  // namespace kelpie
