#ifndef KELPIE_SERVE_LINE_PROTOCOL_H_
#define KELPIE_SERVE_LINE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/explanation.h"
#include "kgraph/dataset.h"

namespace kelpie {
namespace serve {

/// -----------------------------------------------------------------------
/// `kelpie serve` wire format: newline-delimited JSON, one flat object per
/// line in each direction. Requests:
///
///   {"id":1,"op":"score","head":"Person_8","relation":"nationality",
///    "tail":"Country_4"}
///   {"id":2,"op":"explain","head":"Person_8","relation":"nationality",
///    "tail":"Country_4","sufficient":true,"work_budget":200,
///    "timeout":1.5,"shed_after":0.25}
///   {"id":3,"op":"ping"}   {"id":4,"op":"stats"}   {"id":5,"op":"shutdown"}
///
/// Responses echo the id and set "ok". Response bytes for score/explain are
/// deterministic — doubles print with round-trip precision
/// (metrics::FormatDouble) and wall-clock fields (seconds, post-training
/// counts) are deliberately excluded — so golden tests and the serve-smoke
/// CI job can byte-compare them against one-shot CLI output.
///
/// The parser accepts exactly the flat subset the protocol emits: one JSON
/// object of string/number/boolean values, no nesting, unknown keys
/// ignored (forward compatibility).
/// -----------------------------------------------------------------------

struct LineRequest {
  uint64_t id = 0;
  /// "score", "explain", "ping", "stats", "health" or "shutdown".
  std::string op;
  std::string head;
  std::string relation;
  std::string tail;
  /// explain: sufficient scenario instead of necessary.
  bool sufficient = false;
  /// explain: head query instead of tail query.
  bool head_query = false;
  /// explain: deterministic work-unit budget; 0 = unlimited.
  uint64_t work_budget = 0;
  /// explain: per-request wall-clock extraction timeout; 0 = none.
  double timeout_seconds = 0.0;
  /// score/explain: admission deadline in seconds from receipt — the
  /// request is shed unless execution starts within this window. < 0 (the
  /// default) = no admission deadline; 0 = shed unless the server is idle
  /// enough to start it immediately (used by CI to exercise shedding
  /// deterministically).
  double shed_after_seconds = -1.0;
};

/// Parses one request line. Errors name the offending key or byte offset.
Result<LineRequest> ParseRequestLine(std::string_view line);

/// Response renderers. Every renderer returns a complete line *without* the
/// trailing newline; the transport appends it.
std::string ScoreResponseLine(uint64_t id, float score);

/// Deterministic explain rendering: kind, acceptance, completeness,
/// relevance (%.17g), the facts (entity/relation names, tab-separated
/// within a fact), skipped-candidate count, and — for sufficient — the
/// conversion-set entity names. Schedule-dependent fields (seconds, raw
/// post-training counts) are excluded by design.
std::string ExplainResponseLine(uint64_t id, const Explanation& explanation,
                                const std::vector<EntityId>& conversion_set,
                                const Dataset& dataset);

/// {"id":N,"ok":false,"code":"<StatusCodeName>","error":"<message>"}.
std::string ErrorResponseLine(uint64_t id, const Status& status);

std::string PingResponseLine(uint64_t id);
std::string StatsResponseLine(uint64_t id, size_t queue_depth,
                              size_t pool_size, size_t max_queue_depth);
/// {"id":N,"ok":true,"op":"health","state":"ready"|"draining",
///  "warm_mimics":bool,"cache_entries":N} — draining once shutdown has
/// been requested (drain in progress, no new connections); ready
/// otherwise. `warm_mimics` reports whether the pool post-trains from
/// warm-started (stored-embedding-seeded) mimics, `cache_entries` the
/// ready entries of the shared relevance cache (0 when no cache is
/// configured) — together the serving tier's warm state, so a balancer
/// can prefer instances with a hot cache.
std::string HealthResponseLine(uint64_t id, bool draining, bool warm_mimics,
                               size_t cache_entries);
std::string ShutdownResponseLine(uint64_t id);

/// Extracts the "id" field of a response (or request) line without a full
/// parse; 0 when absent. The client uses it to order collected responses.
uint64_t PeekLineId(std::string_view line);

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_LINE_PROTOCOL_H_
