#ifndef KELPIE_SERVE_MODEL_POOL_H_
#define KELPIE_SERVE_MODEL_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kelpie.h"
#include "models/model.h"

namespace kelpie {
namespace serve {

/// A pool of N independently loaded model instances, each paired with its
/// own Kelpie facade, dispatched round-robin with per-instance locking.
///
/// Why N copies instead of one shared instance: extraction mutates
/// per-instance state (the engine's homologous-rank cache, its conversion
/// sampler) and each Kelpie owns its own worker pool, so instances must be
/// used by one request batch at a time. Locking one global instance would
/// serialize the whole server; N instances give N concurrent extractions
/// while every instance still sees single-threaded use (the engine's
/// internal parallelism — num_threads — lives *inside* a lease).
///
/// Every instance is loaded from the same model file, so all N are
/// bitwise-identical parameter sets and every deterministic query returns
/// identical bytes no matter which instance serves it — the property the
/// serving layer's golden tests pin.
///
/// Homologous-mimic caches are kept per instance across leases: cached
/// entries are pure functions of (parameters, entity, query, engine seed),
/// so reuse changes latency, never results.
class ModelPool {
 public:
  struct Instance {
    std::unique_ptr<LinkPredictionModel> model;
    std::unique_ptr<Kelpie> kelpie;
    std::mutex mu;
  };

  /// Exclusive RAII hold of one instance; released on destruction. Movable,
  /// not copyable.
  class Lease {
   public:
    Lease(Instance* instance, size_t index)
        : instance_(instance), index_(index) {}
    ~Lease() {
      if (instance_ != nullptr) instance_->mu.unlock();
    }
    Lease(Lease&& other) noexcept
        : instance_(other.instance_), index_(other.index_) {
      other.instance_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Kelpie& kelpie() { return *instance_->kelpie; }
    const LinkPredictionModel& model() const { return *instance_->model; }
    /// Which pool slot this lease holds (for metrics labels and tests).
    size_t index() const { return index_; }

   private:
    Instance* instance_;
    size_t index_;
  };

  /// Loads `pool_size` (>= 1) instances of the model at `model_path` and
  /// wires each to a Kelpie over `dataset`, which must outlive the pool.
  /// Fails if any load fails (checksum, shape, I/O) — a pool with
  /// mismatched instances could answer the same query two ways.
  static Result<std::unique_ptr<ModelPool>> LoadFromFile(
      const std::string& model_path, const Dataset& dataset, size_t pool_size,
      const KelpieOptions& options);

  /// Acquires the next instance round-robin, blocking until its mutex is
  /// free. Round-robin (not shortest-queue) keeps dispatch order
  /// independent of execution timing.
  Lease Acquire();

  size_t size() const { return instances_.size(); }

  ModelPool(const ModelPool&) = delete;
  ModelPool& operator=(const ModelPool&) = delete;

 private:
  ModelPool() = default;

  std::vector<std::unique_ptr<Instance>> instances_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_MODEL_POOL_H_
