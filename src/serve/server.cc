#include "serve/server.h"

#include <cstdio>
#include <exception>
#include <utility>

#include "common/trace.h"
#include "math/rng.h"

namespace kelpie {
namespace serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Server::ServeMetrics Server::ServeMetrics::Resolve() {
  metrics::Registry& reg = metrics::Registry::Global();
  const metrics::Determinism wc = metrics::Determinism::kWallClock;
  auto counter = [&](const char* op, const char* outcome) -> metrics::Counter& {
    return reg.GetCounter("kelpie_serve_requests_total",
                          {{"op", op}, {"outcome", outcome}}, wc,
                          "Serve requests by operation and outcome.");
  };
  auto truncated = [&](const char* reason) -> metrics::Counter& {
    return reg.GetCounter(
        "kelpie_serve_explain_truncated_total", {{"reason", reason}}, wc,
        "Executed explains whose extraction a limit truncated.");
  };
  return ServeMetrics{
      counter("score", "ok"),
      counter("score", "shed"),
      counter("score", "deadline"),
      counter("score", "error"),
      counter("explain", "ok"),
      counter("explain", "shed"),
      counter("explain", "deadline"),
      counter("explain", "error"),
      truncated("budget"),
      truncated("deadline"),
      truncated("cancelled"),
      reg.GetGauge("kelpie_serve_queue_depth", {}, wc,
                   "Requests waiting in the admission queue."),
      reg.GetHistogram("kelpie_serve_batch_size",
                       metrics::LinearBuckets(1.0, 1.0, 16), {}, wc,
                       "Requests coalesced per dispatched batch."),
      reg.GetHistogram("kelpie_serve_queue_wait_seconds",
                       metrics::ExponentialBuckets(1e-5, 4.0, 10), {}, wc,
                       "Seconds from admission to execution start."),
      reg.GetHistogram("kelpie_serve_execute_seconds",
                       metrics::ExponentialBuckets(1e-4, 4.0, 12), {}, wc,
                       "Seconds executing a request on a pool lease."),
  };
}

Server::Server(const Dataset& dataset, const ServerOptions& options,
               std::unique_ptr<ModelPool> pool)
    : dataset_(dataset),
      options_(options),
      pool_(std::move(pool)),
      queue_(options.max_queue_depth),
      metrics_(ServeMetrics::Resolve()),
      paused_(options.start_paused) {
  const size_t dispatchers =
      options_.dispatchers > 0 ? options_.dispatchers : options_.pool_size;
  dispatchers_.reserve(dispatchers);
  for (size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

Result<std::unique_ptr<Server>> Server::Create(const std::string& model_path,
                                               const Dataset& dataset,
                                               const ServerOptions& options) {
  Result<std::unique_ptr<ModelPool>> pool = ModelPool::LoadFromFile(
      model_path, dataset, options.pool_size, options.kelpie);
  if (!pool.ok()) return pool.status();
  return std::unique_ptr<Server>(
      new Server(dataset, options, std::move(pool).value()));
}

Server::~Server() { Stop(); }

void Server::Resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    if (stopped_) return;
    stopped_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.Close();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  // Drained: persist the shared relevance cache so the warm state survives
  // the restart. A failed flush only costs the next process its warm start.
  if (options_.kelpie.engine.relevance_cache != nullptr) {
    Status flushed = options_.kelpie.engine.relevance_cache->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "serve: relevance-cache flush failed: %s\n",
                   flushed.ToString().c_str());
    }
  }
}

bool Server::Enqueue(Pending& pending) {
  pending.enqueued = std::chrono::steady_clock::now();
  if (!queue_.TryPush(std::move(pending))) return false;
  metrics_.queue_depth.Set(static_cast<double>(queue_.depth()));
  return true;
}

std::future<ScoreResult> Server::Submit(ScoreRequest request) {
  PendingScore pending{std::move(request), {}};
  std::future<ScoreResult> future = pending.promise.get_future();
  const Triple& t = pending.request.triple;
  if (static_cast<size_t>(t.head) >= dataset_.num_entities() ||
      static_cast<size_t>(t.tail) >= dataset_.num_entities() ||
      static_cast<size_t>(t.relation) >= dataset_.num_relations() ||
      t.head < 0 || t.tail < 0 || t.relation < 0) {
    metrics_.score_error.Increment();
    pending.promise.set_value(
        {Status::InvalidArgument("score request ids out of range"), 0.0f});
    return future;
  }
  Pending item{std::move(pending), {}};
  if (!Enqueue(item)) {
    metrics_.score_shed.Increment();
    std::get<PendingScore>(item.body).promise.set_value(
        {Status::Unavailable("request shed: queue full or shutting down"),
         0.0f});
  }
  return future;
}

std::future<ExplainResult> Server::SubmitExplain(ExplainRequest request) {
  PendingExplain pending{std::move(request), {}};
  std::future<ExplainResult> future = pending.promise.get_future();
  const Triple& t = pending.request.prediction;
  if (static_cast<size_t>(t.head) >= dataset_.num_entities() ||
      static_cast<size_t>(t.tail) >= dataset_.num_entities() ||
      static_cast<size_t>(t.relation) >= dataset_.num_relations() ||
      t.head < 0 || t.tail < 0 || t.relation < 0) {
    metrics_.explain_error.Increment();
    ExplainResult result;
    result.status =
        Status::InvalidArgument("explain request ids out of range");
    pending.promise.set_value(std::move(result));
    return future;
  }
  Pending item{std::move(pending), {}};
  if (!Enqueue(item)) {
    metrics_.explain_shed.Increment();
    ExplainResult result;
    result.status =
        Status::Unavailable("request shed: queue full or shutting down");
    std::get<PendingExplain>(item.body).promise.set_value(std::move(result));
  }
  return future;
}

void Server::DispatcherLoop() {
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [&] { return !paused_; });
  }
  std::vector<Pending> batch;
  while (queue_.PopBatch(&batch, options_.max_batch) > 0) {
    metrics_.queue_depth.Set(static_cast<double>(queue_.depth()));
    metrics_.batch_size.Observe(static_cast<double>(batch.size()));
    ModelPool::Lease lease = pool_->Acquire();
    trace::Span span("serve.batch");
    for (Pending& pending : batch) {
      Execute(lease, std::move(pending));
    }
  }
}

void Server::Execute(ModelPool::Lease& lease, Pending pending) {
  metrics_.queue_seconds.Observe(SecondsSince(pending.enqueued));
  if (std::holds_alternative<PendingScore>(pending.body)) {
    ExecuteScore(lease, std::move(std::get<PendingScore>(pending.body)));
  } else {
    ExecuteExplain(lease, std::move(std::get<PendingExplain>(pending.body)));
  }
}

void Server::ExecuteScore(ModelPool::Lease& lease, PendingScore pending) {
  if (pending.request.admission_deadline.Expired()) {
    metrics_.score_deadline.Increment();
    pending.promise.set_value(
        {Status::DeadlineExceeded("admission deadline expired in queue"),
         0.0f});
    return;
  }
  trace::Span span("serve.score");
  const auto start = std::chrono::steady_clock::now();
  const float score = lease.model().Score(pending.request.triple);
  metrics_.execute_seconds.Observe(SecondsSince(start));
  metrics_.score_ok.Increment();
  pending.promise.set_value({Status::Ok(), score});
}

void Server::ExecuteExplain(ModelPool::Lease& lease, PendingExplain pending) {
  ExplainResult result;
  if (pending.request.admission_deadline.Expired()) {
    metrics_.explain_deadline.Increment();
    result.status =
        Status::DeadlineExceeded("admission deadline expired in queue");
    pending.promise.set_value(std::move(result));
    return;
  }
  trace::Span span("serve.explain");
  const auto start = std::chrono::steady_clock::now();
  ExtractionLimits limits;
  limits.work_budget = pending.request.work_budget;
  limits.timeout_seconds = pending.request.timeout_seconds;
  limits.cancel = options_.cancel;
  Kelpie& kelpie = lease.kelpie();
  try {
    if (pending.request.kind == ExplanationKind::kSufficient) {
      // Fresh seed-derived stream per request: a one-shot process samples
      // its conversion set from a fresh engine, and the pooled instance
      // must match it byte-for-byte regardless of what it served before.
      Rng rng(kelpie.engine().options().seed);
      result.conversion_set = kelpie.engine().SampleConversionSet(
          pending.request.prediction, pending.request.target, rng);
      result.explanation = kelpie.ExplainSufficientWithSet(
          pending.request.prediction, pending.request.target,
          result.conversion_set, nullptr, limits);
    } else {
      result.explanation = kelpie.ExplainNecessary(
          pending.request.prediction, pending.request.target, nullptr, limits);
    }
  } catch (const std::exception& e) {
    metrics_.explain_error.Increment();
    result.status = Status::Internal(std::string("extraction failed: ") +
                                     e.what());
    pending.promise.set_value(std::move(result));
    return;
  }
  metrics_.execute_seconds.Observe(SecondsSince(start));
  switch (result.explanation.completeness) {
    case Completeness::kComplete:
      break;
    case Completeness::kTruncatedBudget:
      metrics_.truncated_budget.Increment();
      break;
    case Completeness::kTruncatedDeadline:
      metrics_.truncated_deadline.Increment();
      break;
    case Completeness::kCancelled:
      metrics_.truncated_cancelled.Increment();
      break;
  }
  metrics_.explain_ok.Increment();
  result.status = Status::Ok();
  pending.promise.set_value(std::move(result));
}

}  // namespace serve
}  // namespace kelpie
