#ifndef KELPIE_SERVE_CLIENT_H_
#define KELPIE_SERVE_CLIENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace kelpie {
namespace serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Concurrent TCP connections the request lines are spread across.
  size_t connections = 1;
};

/// Drives a `kelpie serve` endpoint with a batch of request lines and
/// returns every response line, sorted by response id (then textually for
/// id-less lines) so the output is stable no matter how requests interleave
/// across connections. Lines are distributed round-robin over
/// `options.connections` connections; each connection writes its share,
/// half-closes, and reads to EOF.
///
/// Fails if any connection breaks before EOF or the response count does not
/// match the request count.
Result<std::vector<std::string>> RunClientBatch(
    const ClientOptions& options, const std::vector<std::string>& lines);

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_CLIENT_H_
