#ifndef KELPIE_SERVE_CLIENT_H_
#define KELPIE_SERVE_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace kelpie {
namespace serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Concurrent TCP connections the request lines are spread across.
  size_t connections = 1;
  /// Re-send budget per request for retriable failures: an `Unavailable`
  /// response (admission shed), a connection reset before the response
  /// arrived, or a refused connect. 0 = fail fast (one attempt).
  size_t max_retries = 3;
  /// First retry delay; doubles per round up to the cap. Jitter is
  /// deterministic, derived from (retry_seed, connection, round) — a
  /// replayed batch backs off identically.
  double retry_backoff_seconds = 0.05;
  double retry_backoff_cap_seconds = 1.0;
  uint64_t retry_seed = 1;
};

struct ClientBatchResult {
  /// Exactly one response line per request line, sorted by response id
  /// (then textually for id-less lines). A request whose retries were
  /// exhausted carries its last error response — or a synthesized
  /// {"ok":false,"code":"Unavailable",...} line if the connection died
  /// before any response arrived.
  std::vector<std::string> responses;
  /// Re-send attempts performed across all requests.
  size_t retries = 0;
  /// Requests that exhausted their retry budget (the CLI exits nonzero
  /// only when this is > 0).
  size_t exhausted = 0;
};

/// Drives a `kelpie serve` endpoint with a batch of request lines. Lines
/// are distributed round-robin over `options.connections` connections; each
/// connection writes its share, half-closes, and reads to EOF. Responses
/// match requests positionally per connection (the server answers each
/// connection FIFO), so shed and reset requests are identified exactly and
/// retried with capped exponential backoff — one failing request degrades
/// to its own error line instead of aborting the whole batch.
///
/// Fails (Result error) only on invalid arguments (e.g. a bad host);
/// network-level failures surface as per-request error lines and the
/// `exhausted` counter.
Result<ClientBatchResult> RunClientBatch(const ClientOptions& options,
                                         const std::vector<std::string>& lines);

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_CLIENT_H_
