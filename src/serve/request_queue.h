#ifndef KELPIE_SERVE_REQUEST_QUEUE_H_
#define KELPIE_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace kelpie {
namespace serve {

/// Bounded MPMC request queue with admission control — the waiting room of
/// the serving layer. Producers (`Submit` call sites, connection handlers)
/// `TryPush`; a full or closed queue rejects immediately instead of
/// blocking, which is what lets the server shed load under pressure rather
/// than buffering unboundedly. Consumers (dispatcher threads) `PopBatch`:
/// everything queued at wake-up time, up to `max_batch`, comes out in one
/// call, which is how concurrent requests coalesce into batches executed
/// under a single model-pool lease.
///
/// `T` needs to be movable only (requests carry `std::promise`s).
template <typename T>
class RequestQueue {
 public:
  /// `max_depth` bounds the number of queued items; 0 = unbounded.
  explicit RequestQueue(size_t max_depth = 0) : max_depth_(max_depth) {}

  /// Enqueues `item` unless the queue is full or closed; returns whether the
  /// item was accepted. Never blocks — rejection is the shed signal. On
  /// rejection `item` is left untouched, so the caller can still fulfil the
  /// promise it carries.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (max_depth_ > 0 && items_.size() >= max_depth_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue is closed and
  /// drained), then moves up to `max_batch` items into `out` (cleared
  /// first). Returns the number of items popped; 0 means closed-and-empty —
  /// the consumer's signal to exit. `max_batch` 0 means "everything queued".
  size_t PopBatch(std::vector<T>* out, size_t max_batch) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return !items_.empty() || closed_; });
    const size_t take = max_batch == 0
                            ? items_.size()
                            : std::min(items_.size(), max_batch);
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (!items_.empty()) {
      // More work remains: wake another consumer so batches drain in
      // parallel across dispatchers.
      ready_.notify_one();
    }
    return take;
  }

  /// Closes admission: every later TryPush fails, every PopBatch drains what
  /// is left and then returns 0. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t max_depth() const { return max_depth_; }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

 private:
  const size_t max_depth_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_REQUEST_QUEUE_H_
