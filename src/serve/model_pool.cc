#include "serve/model_pool.h"

#include <utility>

#include "models/model_store.h"

namespace kelpie {
namespace serve {

Result<std::unique_ptr<ModelPool>> ModelPool::LoadFromFile(
    const std::string& model_path, const Dataset& dataset, size_t pool_size,
    const KelpieOptions& options) {
  if (pool_size == 0) {
    return Status::InvalidArgument("model pool size must be >= 1");
  }
  auto pool = std::unique_ptr<ModelPool>(new ModelPool());
  pool->instances_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    Result<std::unique_ptr<LinkPredictionModel>> model = LoadModel(model_path);
    if (!model.ok()) return model.status();
    if ((*model)->num_entities() != dataset.num_entities() ||
        (*model)->num_relations() != dataset.num_relations()) {
      return Status::InvalidArgument(
          "model/dataset mismatch: model has " +
          std::to_string((*model)->num_entities()) + " entities / " +
          std::to_string((*model)->num_relations()) + " relations, dataset '" +
          std::string(dataset.name()) + "' has " +
          std::to_string(dataset.num_entities()) + " / " +
          std::to_string(dataset.num_relations()));
    }
    auto instance = std::make_unique<Instance>();
    instance->model = std::move(model).value();
    instance->kelpie =
        std::make_unique<Kelpie>(*instance->model, dataset, options);
    pool->instances_.push_back(std::move(instance));
  }
  return pool;
}

ModelPool::Lease ModelPool::Acquire() {
  const size_t index = static_cast<size_t>(
      next_.fetch_add(1, std::memory_order_relaxed) % instances_.size());
  Instance* instance = instances_[index].get();
  instance->mu.lock();
  return Lease(instance, index);
}

}  // namespace serve
}  // namespace kelpie
