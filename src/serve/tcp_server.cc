#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/line_protocol.h"

namespace kelpie {
namespace serve {

namespace {

/// Writes all of `data` (+ newline) to `fd`; false on a broken connection.
bool SendLine(int fd, const std::string& data) {
  std::string line = data;
  line.push_back('\n');
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

/// The FIFO between a connection's reader and writer. Each slot is either a
/// ready line (control ops, parse errors) or a future the writer resolves;
/// popping in push order keeps responses in request order.
class ConnectionPipeline {
 public:
  struct Slot {
    enum class Kind { kReady, kScore, kExplain } kind = Kind::kReady;
    uint64_t id = 0;
    std::string ready;
    std::future<ScoreResult> score;
    std::future<ExplainResult> explain;
  };

  explicit ConnectionPipeline(size_t max_pipeline)
      : max_pipeline_(max_pipeline) {}

  /// Blocks while the pipeline is at capacity (backpressure on the reader).
  void Push(Slot slot) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return slots_.size() < max_pipeline_; });
    slots_.push_back(std::move(slot));
    cv_.notify_all();
  }

  /// Marks the reader finished: the writer drains what is left and exits.
  void Finish() {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    cv_.notify_all();
  }

  /// Pops the next slot in order; false when finished and drained.
  bool Pop(Slot* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !slots_.empty() || finished_; });
    if (slots_.empty()) return false;
    *out = std::move(slots_.front());
    slots_.pop_front();
    cv_.notify_all();
    return true;
  }

 private:
  const size_t max_pipeline_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Slot> slots_;
  bool finished_ = false;
};

TcpServer::TcpServer(Server& server, TcpServerOptions options)
    : server_(server), options_(std::move(options)) {}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

void TcpServer::Run() {
  std::vector<std::thread> connections;
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flags
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back([this, fd] { HandleConnection(fd); });
  }
  for (std::thread& t : connections) t.join();
}

void TcpServer::HandleLine(const std::string& line, ConnectionPipeline& out) {
  ConnectionPipeline::Slot slot;
  Result<LineRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    slot.ready = ErrorResponseLine(PeekLineId(line), parsed.status());
    out.Push(std::move(slot));
    return;
  }
  const LineRequest& req = *parsed;
  slot.id = req.id;
  if (req.op == "ping") {
    slot.ready = PingResponseLine(req.id);
    out.Push(std::move(slot));
    return;
  }
  if (req.op == "health") {
    // Readiness for load balancers and the chaos-smoke job: "draining"
    // once shutdown was requested (pipelined lines received before the
    // drain still get answers; new connections are refused). Warm state
    // rides along: the mimic warm-start flag and the relevance cache's
    // ready-entry count.
    const auto& engine_options = server_.options().kelpie.engine;
    const size_t cache_entries =
        engine_options.relevance_cache != nullptr
            ? engine_options.relevance_cache->stats().entries
            : 0;
    slot.ready = HealthResponseLine(req.id, shutdown_requested(),
                                    engine_options.warm_start_mimics,
                                    cache_entries);
    out.Push(std::move(slot));
    return;
  }
  if (req.op == "stats") {
    slot.ready = StatsResponseLine(req.id, server_.queue_depth(),
                                   server_.pool().size(),
                                   server_.options().max_queue_depth);
    out.Push(std::move(slot));
    return;
  }
  if (req.op == "shutdown") {
    slot.ready = ShutdownResponseLine(req.id);
    out.Push(std::move(slot));
    Shutdown();
    return;
  }
  const Dataset& dataset = server_.dataset();
  Result<int32_t> head = dataset.entities().Find(req.head);
  Result<int32_t> relation = dataset.relations().Find(req.relation);
  Result<int32_t> tail = dataset.entities().Find(req.tail);
  for (const Status& status :
       {head.status(), relation.status(), tail.status()}) {
    if (!status.ok()) {
      slot.ready = ErrorResponseLine(req.id, status);
      out.Push(std::move(slot));
      return;
    }
  }
  const Triple triple(*head, *relation, *tail);
  Deadline admission;  // infinite
  if (req.shed_after_seconds >= 0.0) {
    admission = Deadline::After(req.shed_after_seconds);
  }
  if (req.op == "score") {
    slot.kind = ConnectionPipeline::Slot::Kind::kScore;
    slot.score = server_.Submit(ScoreRequest{triple, admission});
  } else {
    ExplainRequest explain;
    explain.prediction = triple;
    explain.target = req.head_query ? PredictionTarget::kHead
                                    : PredictionTarget::kTail;
    explain.kind = req.sufficient ? ExplanationKind::kSufficient
                                  : ExplanationKind::kNecessary;
    explain.work_budget = req.work_budget;
    explain.timeout_seconds = req.timeout_seconds;
    explain.admission_deadline = admission;
    slot.kind = ConnectionPipeline::Slot::Kind::kExplain;
    slot.explain = server_.SubmitExplain(std::move(explain));
  }
  out.Push(std::move(slot));
}

void TcpServer::HandleConnection(int fd) {
  ConnectionPipeline pipeline(options_.max_pipeline);
  std::thread writer([this, fd, &pipeline] {
    ConnectionPipeline::Slot slot;
    while (pipeline.Pop(&slot)) {
      std::string line;
      switch (slot.kind) {
        case ConnectionPipeline::Slot::Kind::kReady:
          line = std::move(slot.ready);
          break;
        case ConnectionPipeline::Slot::Kind::kScore: {
          ScoreResult result = slot.score.get();
          line = result.status.ok()
                     ? ScoreResponseLine(slot.id, result.score)
                     : ErrorResponseLine(slot.id, result.status);
          break;
        }
        case ConnectionPipeline::Slot::Kind::kExplain: {
          ExplainResult result = slot.explain.get();
          line = result.status.ok()
                     ? ExplainResponseLine(slot.id, result.explanation,
                                           result.conversion_set,
                                           server_.dataset())
                     : ErrorResponseLine(slot.id, result.status);
          break;
        }
      }
      if (!SendLine(fd, line)) break;
    }
  });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown_requested()) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      open = false;  // EOF or error: drain what we have and finish
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Lines already buffered are in-flight work: a drain (shutdown op or
      // SIGTERM) finishes them instead of dropping them mid-parse — the
      // outer loop stops *reading* once shutdown is requested.
      HandleLine(line, pipeline);
    }
  }
  pipeline.Finish();
  writer.join();
  ::close(fd);
}

}  // namespace serve
}  // namespace kelpie
