#ifndef KELPIE_SERVE_SERVER_H_
#define KELPIE_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/budget.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/kelpie.h"
#include "serve/model_pool.h"
#include "serve/request_queue.h"

namespace kelpie {
namespace serve {

/// -----------------------------------------------------------------------
/// Kelpie-as-a-service: the in-process serving layer (DESIGN.md §12).
///
/// One bounded RequestQueue feeds `dispatchers` worker threads. Each
/// dispatcher pops a coalesced batch of requests, acquires a ModelPool
/// lease (round-robin, per-instance lock) and executes the batch on that
/// instance. Admission control is built on the PR 3 budget machinery:
/// per-request admission deadlines, a bounded queue that sheds on
/// overflow, and per-request extraction limits whose truncations surface
/// as `Completeness`-annotated partial results instead of errors.
///
/// Determinism contract: for any request, the response bytes equal what a
/// fresh one-shot process would produce for the same query at any pool
/// size, dispatcher count, or thread count. Pool instances are loaded from
/// one model file (bitwise-identical parameters); extraction is
/// thread-count-invariant (DESIGN.md §7); conversion sets are sampled per
/// request from a fresh seed-derived stream; and wall-clock fields are
/// excluded from responses. The golden test in tests/serve_test.cc replays
/// a mixed concurrent workload and byte-compares against sequential
/// execution.
/// -----------------------------------------------------------------------

struct ServerOptions {
  /// Model instances in the pool (concurrent extractions).
  size_t pool_size = 2;
  /// Dispatcher threads pulling batches; 0 = pool_size.
  size_t dispatchers = 0;
  /// Queued requests beyond this are shed with kUnavailable; 0 = unbounded.
  size_t max_queue_depth = 256;
  /// Most requests coalesced into one batch (one pool lease); 0 = no cap.
  size_t max_batch = 16;
  /// Extraction options for every pooled Kelpie instance; num_threads is
  /// the per-extraction worker count *inside* a lease.
  KelpieOptions kelpie;
  /// Server-wide cooperative cancellation, overlaid on every extraction
  /// (the CLI wires SIGINT/SIGTERM here). Cancelled extractions return
  /// best-so-far results with Completeness::kCancelled.
  CancelToken cancel;
  /// When true the dispatchers start idle and nothing executes until
  /// Resume() — used by tests to fill the queue deterministically and
  /// observe admission control without racing the dispatchers.
  bool start_paused = false;
};

struct ScoreRequest {
  Triple triple;
  /// Shed the request (kDeadlineExceeded) if it has not *started* executing
  /// by this point; infinite by default.
  Deadline admission_deadline;
};

struct ScoreResult {
  Status status;
  float score = 0.0f;
};

struct ExplainRequest {
  Triple prediction;
  PredictionTarget target = PredictionTarget::kTail;
  ExplanationKind kind = ExplanationKind::kNecessary;
  /// Deterministic work-unit budget for this extraction; 0 = unlimited.
  uint64_t work_budget = 0;
  /// Per-request wall-clock extraction timeout; 0 = none. Not reproducible.
  double timeout_seconds = 0.0;
  /// Shed if execution has not started by this point.
  Deadline admission_deadline;
};

struct ExplainResult {
  /// Ok for every executed extraction — including truncated ones, which
  /// report via explanation.completeness. Non-Ok only when nothing ran
  /// (shed, expired admission deadline, invalid ids).
  Status status;
  Explanation explanation;
  /// The sampled conversion set (sufficient scenario only).
  std::vector<EntityId> conversion_set;
};

class Server {
 public:
  /// Loads the pool from `model_path` and starts the dispatchers. `dataset`
  /// must outlive the server.
  static Result<std::unique_ptr<Server>> Create(const std::string& model_path,
                                                const Dataset& dataset,
                                                const ServerOptions& options);

  /// Stops accepting, drains queued requests (every accepted future is
  /// fulfilled), joins the dispatchers.
  ~Server();

  /// Submits a score request. The future resolves to the score, or to a
  /// shed/deadline status if admission control rejected it. Never blocks.
  std::future<ScoreResult> Submit(ScoreRequest request);

  /// Submits an explain request; same admission semantics.
  std::future<ExplainResult> SubmitExplain(ExplainRequest request);

  /// Releases dispatchers created with `start_paused`. No-op otherwise.
  void Resume();

  /// Closes admission (later Submits shed) and drains: queued requests
  /// still execute, then dispatchers exit. Idempotent; the destructor calls
  /// it. To abandon in-flight extractions early, request cancellation on
  /// `options().cancel` first — they return best-so-far and the drain stays
  /// prompt.
  void Stop();

  size_t queue_depth() const { return queue_.depth(); }
  const ServerOptions& options() const { return options_; }
  const Dataset& dataset() const { return dataset_; }
  ModelPool& pool() { return *pool_; }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct PendingScore {
    ScoreRequest request;
    std::promise<ScoreResult> promise;
  };
  struct PendingExplain {
    ExplainRequest request;
    std::promise<ExplainResult> promise;
  };
  struct Pending {
    std::variant<PendingScore, PendingExplain> body;
    /// Steady-clock enqueue instant, for the queue-wait histogram.
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Registry handles resolved once at construction. All serve metrics are
  /// kWallClock: outcomes (shed vs ok), batch composition and latencies
  /// depend on arrival timing and the dispatch schedule, never on the
  /// deterministic result bytes.
  struct ServeMetrics {
    metrics::Counter& score_ok;
    metrics::Counter& score_shed;
    metrics::Counter& score_deadline;
    metrics::Counter& score_error;
    metrics::Counter& explain_ok;
    metrics::Counter& explain_shed;
    metrics::Counter& explain_deadline;
    metrics::Counter& explain_error;
    metrics::Counter& truncated_budget;
    metrics::Counter& truncated_deadline;
    metrics::Counter& truncated_cancelled;
    metrics::Gauge& queue_depth;
    metrics::Histogram& batch_size;
    metrics::Histogram& queue_seconds;
    metrics::Histogram& execute_seconds;

    static ServeMetrics Resolve();
  };

  Server(const Dataset& dataset, const ServerOptions& options,
         std::unique_ptr<ModelPool> pool);

  void DispatcherLoop();
  void Execute(ModelPool::Lease& lease, Pending pending);
  void ExecuteScore(ModelPool::Lease& lease, PendingScore pending);
  void ExecuteExplain(ModelPool::Lease& lease, PendingExplain pending);
  /// Stamps the enqueue time and offers `pending` to the queue. On
  /// rejection (full or closed) `pending` is left intact so the caller can
  /// fulfil the promise it carries with the shed status.
  bool Enqueue(Pending& pending);

  const Dataset& dataset_;
  ServerOptions options_;
  std::unique_ptr<ModelPool> pool_;
  RequestQueue<Pending> queue_;
  ServeMetrics metrics_;
  std::vector<std::thread> dispatchers_;
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_SERVER_H_
