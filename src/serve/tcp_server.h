#ifndef KELPIE_SERVE_TCP_SERVER_H_
#define KELPIE_SERVE_TCP_SERVER_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "serve/server.h"

namespace kelpie {
namespace serve {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after Start().
  int port = 0;
  /// Per-connection pipelining cap: a reader that is this many responses
  /// ahead of its writer blocks instead of buffering futures unboundedly.
  /// The server-side queue bound (ServerOptions::max_queue_depth) is the
  /// real admission control; this only bounds per-connection memory.
  size_t max_pipeline = 128;
  /// Checked alongside Shutdown() in the accept loop, so the CLI's
  /// SIGINT/SIGTERM token stops the front end too.
  CancelToken cancel;
};

/// Line-protocol TCP front end over a serve::Server. One reader thread per
/// connection parses newline-delimited JSON requests and submits them;
/// a paired writer thread sends responses back in request order (futures
/// are waited FIFO), so each connection's response stream is deterministic
/// whenever the responses themselves are.
///
/// A request line with op "shutdown" stops the whole front end (the CI
/// smoke job uses it for a clean exit with flushed metrics).
class TcpServer {
 public:
  TcpServer(Server& server, TcpServerOptions options);
  ~TcpServer();

  /// Binds and listens; fills port(). Separate from Run() so callers can
  /// print the bound address before serving.
  Status Start();

  int port() const { return port_; }

  /// Accept loop; returns once Shutdown() is called (or the cancel token
  /// fires), after every connection thread has drained and joined.
  void Run();

  /// Asynchronously stops Run(): no new connections, readers stop at the
  /// next poll tick, writers drain their pipelines.
  void Shutdown() { stop_.store(true, std::memory_order_release); }

  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire) ||
           options_.cancel.cancelled();
  }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

 private:
  void HandleConnection(int fd);
  void HandleLine(const std::string& line, class ConnectionPipeline& out);

  Server& server_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace serve
}  // namespace kelpie

#endif  // KELPIE_SERVE_TCP_SERVER_H_
