#include "serve/line_protocol.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/metrics.h"

namespace kelpie {
namespace serve {

namespace {

using metrics::FormatDouble;
using metrics::JsonEscape;

/// One parsed flat-JSON value. Numbers keep their spelling; typed readers
/// convert (and diagnose) per field.
struct FlatValue {
  enum class Kind { kString, kNumber, kBool, kNull } kind = Kind::kNull;
  std::string text;   // string contents (unescaped) or number spelling
  bool boolean = false;
};

/// Minimal parser for one flat JSON object: string/number/bool/null values
/// only, no nesting. Positions in errors are byte offsets into the line.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view in) : in_(in) {}

  Result<std::map<std::string, FlatValue>> Parse() {
    std::map<std::string, FlatValue> out;
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return CheckTrailing(std::move(out));
    while (true) {
      SkipSpace();
      std::string key;
      KELPIE_ASSIGN_OR_RETURN(key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key '" + key + "'");
      SkipSpace();
      FlatValue value;
      KELPIE_ASSIGN_OR_RETURN(value, ParseValue(key));
      out[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return CheckTrailing(std::move(out));
      return Error("expected ',' or '}'");
    }
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("bad request line at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  Result<std::map<std::string, FlatValue>> CheckTrailing(
      std::map<std::string, FlatValue> out) {
    SkipSpace();
    if (pos_ != in_.size()) return Error("trailing bytes after object");
    return out;
  }

  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) break;
      char esc = in_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default:
          return Error(std::string("unsupported escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<FlatValue> ParseValue(const std::string& key) {
    FlatValue v;
    if (pos_ < in_.size() && in_[pos_] == '"') {
      v.kind = FlatValue::Kind::kString;
      KELPIE_ASSIGN_OR_RETURN(v.text, ParseString());
      return v;
    }
    if (in_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = FlatValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (in_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = FlatValue::Kind::kBool;
      return v;
    }
    if (in_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    const size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '-' || in_[pos_] == '+' || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("value of '" + key +
                   "' is neither a string, number, boolean nor null "
                   "(nested objects/arrays are not part of the protocol)");
    }
    v.kind = FlatValue::Kind::kNumber;
    v.text = std::string(in_.substr(start, pos_ - start));
    return v;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

Result<std::string> ReadString(const std::map<std::string, FlatValue>& fields,
                               const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) return std::string();
  if (it->second.kind != FlatValue::Kind::kString) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return it->second.text;
}

Result<bool> ReadBool(const std::map<std::string, FlatValue>& fields,
                      const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) return false;
  if (it->second.kind != FlatValue::Kind::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return it->second.boolean;
}

Result<double> ReadDouble(const std::map<std::string, FlatValue>& fields,
                          const std::string& key, double fallback) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (it->second.kind != FlatValue::Kind::kNumber) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  const std::string& raw = it->second.text;
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) {
    return Status::InvalidArgument("field '" + key + "': bad number '" + raw +
                                   "'");
  }
  return value;
}

Result<uint64_t> ReadU64(const std::map<std::string, FlatValue>& fields,
                         const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) return uint64_t{0};
  if (it->second.kind != FlatValue::Kind::kNumber ||
      it->second.text.empty() || it->second.text[0] == '-') {
    return Status::InvalidArgument("field '" + key +
                                   "' must be a non-negative integer");
  }
  const std::string& raw = it->second.text;
  char* end = nullptr;
  uint64_t value = std::strtoull(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) {
    return Status::InvalidArgument("field '" + key + "': bad integer '" +
                                   raw + "'");
  }
  return value;
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool quote) {
  out->push_back(',');
  out->push_back('"');
  *out += key;
  *out += "\":";
  if (quote) {
    out->push_back('"');
    *out += JsonEscape(value);
    out->push_back('"');
  } else {
    *out += value;
  }
}

std::string LinePrefix(uint64_t id, bool ok) {
  std::string out = "{\"id\":" + std::to_string(id);
  out += ok ? ",\"ok\":true" : ",\"ok\":false";
  return out;
}

}  // namespace

Result<LineRequest> ParseRequestLine(std::string_view line) {
  FlatJsonParser parser(line);
  std::map<std::string, FlatValue> fields;
  KELPIE_ASSIGN_OR_RETURN(fields, parser.Parse());
  LineRequest req;
  KELPIE_ASSIGN_OR_RETURN(req.id, ReadU64(fields, "id"));
  KELPIE_ASSIGN_OR_RETURN(req.op, ReadString(fields, "op"));
  if (req.op.empty()) {
    return Status::InvalidArgument("request line is missing \"op\"");
  }
  if (req.op != "score" && req.op != "explain" && req.op != "ping" &&
      req.op != "stats" && req.op != "shutdown" && req.op != "health") {
    return Status::InvalidArgument("unknown op '" + req.op + "'");
  }
  KELPIE_ASSIGN_OR_RETURN(req.head, ReadString(fields, "head"));
  KELPIE_ASSIGN_OR_RETURN(req.relation, ReadString(fields, "relation"));
  KELPIE_ASSIGN_OR_RETURN(req.tail, ReadString(fields, "tail"));
  KELPIE_ASSIGN_OR_RETURN(req.sufficient, ReadBool(fields, "sufficient"));
  KELPIE_ASSIGN_OR_RETURN(req.head_query, ReadBool(fields, "head_query"));
  KELPIE_ASSIGN_OR_RETURN(req.work_budget, ReadU64(fields, "work_budget"));
  KELPIE_ASSIGN_OR_RETURN(req.timeout_seconds,
                          ReadDouble(fields, "timeout", 0.0));
  KELPIE_ASSIGN_OR_RETURN(req.shed_after_seconds,
                          ReadDouble(fields, "shed_after", -1.0));
  if (req.timeout_seconds < 0.0) {
    return Status::InvalidArgument("field 'timeout' must be non-negative");
  }
  if (req.op == "score" || req.op == "explain") {
    if (req.head.empty() || req.relation.empty() || req.tail.empty()) {
      return Status::InvalidArgument(
          "op '" + req.op + "' needs \"head\", \"relation\" and \"tail\"");
    }
  }
  return req;
}

std::string ScoreResponseLine(uint64_t id, float score) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "score", true);
  AppendField(&out, "score", FormatDouble(static_cast<double>(score)), false);
  out.push_back('}');
  return out;
}

std::string ExplainResponseLine(uint64_t id, const Explanation& explanation,
                                const std::vector<EntityId>& conversion_set,
                                const Dataset& dataset) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "explain", true);
  AppendField(&out, "kind", ExplanationKindName(explanation.kind), true);
  AppendField(&out, "accepted", explanation.accepted ? "true" : "false",
              false);
  AppendField(&out, "completeness",
              std::string(CompletenessName(explanation.completeness)), true);
  AppendField(&out, "relevance", FormatDouble(explanation.relevance), false);
  out += ",\"facts\":[";
  for (size_t i = 0; i < explanation.facts.size(); ++i) {
    if (i > 0) out.push_back(',');
    const Triple& fact = explanation.facts[i];
    std::string rendered = dataset.entities().NameOf(fact.head);
    rendered.push_back('\t');
    rendered += dataset.relations().NameOf(fact.relation);
    rendered.push_back('\t');
    rendered += dataset.entities().NameOf(fact.tail);
    out.push_back('"');
    out += JsonEscape(rendered);
    out.push_back('"');
  }
  out.push_back(']');
  AppendField(&out, "skipped",
              std::to_string(explanation.skipped_candidates), false);
  if (explanation.kind == ExplanationKind::kSufficient) {
    out += ",\"conversion\":[";
    for (size_t i = 0; i < conversion_set.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      out += JsonEscape(dataset.entities().NameOf(conversion_set[i]));
      out.push_back('"');
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string ErrorResponseLine(uint64_t id, const Status& status) {
  std::string out = LinePrefix(id, false);
  AppendField(&out, "code", std::string(StatusCodeName(status.code())), true);
  AppendField(&out, "error", status.message(), true);
  out.push_back('}');
  return out;
}

std::string PingResponseLine(uint64_t id) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "ping", true);
  out.push_back('}');
  return out;
}

std::string StatsResponseLine(uint64_t id, size_t queue_depth,
                              size_t pool_size, size_t max_queue_depth) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "stats", true);
  AppendField(&out, "queue_depth", std::to_string(queue_depth), false);
  AppendField(&out, "pool_size", std::to_string(pool_size), false);
  AppendField(&out, "max_queue_depth", std::to_string(max_queue_depth),
              false);
  out.push_back('}');
  return out;
}

std::string HealthResponseLine(uint64_t id, bool draining, bool warm_mimics,
                               size_t cache_entries) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "health", true);
  AppendField(&out, "state", draining ? "draining" : "ready", true);
  AppendField(&out, "warm_mimics", warm_mimics ? "true" : "false", false);
  AppendField(&out, "cache_entries", std::to_string(cache_entries), false);
  out.push_back('}');
  return out;
}

std::string ShutdownResponseLine(uint64_t id) {
  std::string out = LinePrefix(id, true);
  AppendField(&out, "op", "shutdown", true);
  out.push_back('}');
  return out;
}

uint64_t PeekLineId(std::string_view line) {
  const size_t at = line.find("\"id\":");
  if (at == std::string_view::npos) return 0;
  size_t pos = at + 5;
  uint64_t id = 0;
  while (pos < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[pos]))) {
    id = id * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  return id;
}

}  // namespace serve
}  // namespace kelpie
