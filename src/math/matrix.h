#ifndef KELPIE_MATH_MATRIX_H_
#define KELPIE_MATH_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"

namespace kelpie {

/// A dense row-major float matrix. This is the storage type for embedding
/// tables and for the small neural weights of ConvE. It is a plain
/// container: all numerical work happens in the vec.h kernels operating on
/// row spans.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Mutable view of row `r`.
  std::span<float> Row(size_t r) {
    KELPIE_DCHECK(r < rows_);
    return std::span<float>(data_.data() + r * cols_, cols_);
  }

  /// Const view of row `r`.
  std::span<const float> Row(size_t r) const {
    KELPIE_DCHECK(r < rows_);
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  float& At(size_t r, size_t c) {
    KELPIE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    KELPIE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Whole backing buffer (row-major).
  std::span<float> Data() { return data_; }
  std::span<const float> Data() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes to rows x cols, zero-filling; existing contents are discarded.
  void Reset(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace kelpie

#endif  // KELPIE_MATH_MATRIX_H_
