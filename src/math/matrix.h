#ifndef KELPIE_MATH_MATRIX_H_
#define KELPIE_MATH_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace kelpie {

/// A dense row-major float matrix. This is the storage type for embedding
/// tables and for the small neural weights of ConvE. It is a plain
/// container: all numerical work happens in the vec.h kernels operating on
/// row spans.
///
/// The matrix carries a monotonically increasing `version()` counter that
/// advances on every mutable access (row/element/buffer views, fills,
/// resets, assignments). Derived read-only artifacts — the quantized
/// shortlist tables of math/quant.h — key their caches on it, so any write
/// path (training steps, post-training mimic updates, baseline
/// perturbations, LoadParameters) invalidates them without the writer
/// having to know they exist. Versioning follows the same thread contract
/// as the data: mutation is single-writer, concurrent readers only.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  Matrix(const Matrix& other) = default;
  Matrix(Matrix&&) noexcept = default;
  /// Assignment replaces the contents, so the version must advance past
  /// both operands' histories (LoadParameters swaps in whole tables this
  /// way).
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      version_ = std::max(version_, other.version_) + 1;
    }
    return *this;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = std::move(other.data_);
      version_ = std::max(version_, other.version_) + 1;
    }
    return *this;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Mutation counter (see class comment).
  uint64_t version() const { return version_; }

  /// Mutable view of row `r`.
  std::span<float> Row(size_t r) {
    KELPIE_DCHECK(r < rows_);
    ++version_;
    return std::span<float>(data_.data() + r * cols_, cols_);
  }

  /// Const view of row `r`.
  std::span<const float> Row(size_t r) const {
    KELPIE_DCHECK(r < rows_);
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  float& At(size_t r, size_t c) {
    KELPIE_DCHECK(r < rows_ && c < cols_);
    ++version_;
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    KELPIE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Whole backing buffer (row-major).
  std::span<float> Data() {
    ++version_;
    return data_;
  }
  std::span<const float> Data() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value) {
    ++version_;
    std::fill(data_.begin(), data_.end(), value);
  }

  /// Resizes to rows x cols, zero-filling; existing contents are discarded.
  void Reset(size_t rows, size_t cols) {
    ++version_;
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
  uint64_t version_ = 0;
};

}  // namespace kelpie

#endif  // KELPIE_MATH_MATRIX_H_
