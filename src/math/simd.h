#ifndef KELPIE_MATH_SIMD_H_
#define KELPIE_MATH_SIMD_H_

#include <cstddef>
#include <span>

namespace kelpie {
namespace simd {

/// Vectorized BLAS-1/2 kernels with a *lane-determinism contract*: every
/// backend (scalar, SSE2, AVX2) produces bit-identical floats because they
/// all commit to the same fixed reduction order (DESIGN.md §11).
///
/// The contract, for every reducing kernel over n elements:
///  - element i contributes its term to virtual lane `i & 7`, in increasing
///    i order within the lane (8 virtual accumulator lanes regardless of
///    the physical register width: AVX2 maps them onto one 256-bit
///    register, SSE2 onto two 128-bit registers, scalar onto a float[8]);
///  - each term is a separately rounded multiply followed by a separately
///    rounded add — never an FMA (the module is compiled with
///    -ffp-contract=off so the compiler cannot fuse them either);
///  - the 8 lane sums reduce in the fixed tree
///    ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
///
/// Element-wise kernels (Axpy, Scale) have no reduction and are trivially
/// bit-identical across backends.
///
/// The backend is chosen at compile time by the KELPIE_SIMD CMake option
/// (auto|avx2|sse2|off); one binary contains exactly one backend plus the
/// scalar reference, which is always compiled so tests can assert bitwise
/// equivalence in-process.

enum class Backend { kScalar, kSse2, kAvx2 };

/// The backend this binary was compiled with.
Backend ActiveBackend();

/// "scalar", "sse2", or "avx2".
const char* BackendName();

/// Inner product of `a` and `b` (equal lengths).
float Dot(std::span<const float> a, std::span<const float> b);

/// Squared Euclidean distance between `a` and `b`.
float SquaredDistance(std::span<const float> a, std::span<const float> b);

/// L1 distance between `a` and `b`.
float L1Distance(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void Scale(std::span<float> x, float alpha);

/// Row-major matrix-vector product: out[r] = Dot(row r of `matrix`, x) for
/// r in [0, rows). Blocked over rows so candidate sweeps share the loads of
/// `x`; each row's result is bit-identical to a standalone Dot call.
void GemvRowMajor(const float* matrix, size_t rows, size_t cols,
                  const float* x, float* out);

/// out[r] = SquaredDistance(row r of `matrix`, x) — the distance-model
/// (TransE/RotatE) counterpart of GemvRowMajor, same blocking and the same
/// per-row bitwise-equivalence guarantee.
void SquaredDistanceRows(const float* matrix, size_t rows, size_t cols,
                         const float* x, float* out);

/// Reference implementations of every kernel above, written directly
/// against the lane contract with plain scalar code. Always compiled —
/// the dispatching kernels must match them bit for bit on any backend
/// (kernel_equivalence_test).
namespace scalar {
float Dot(std::span<const float> a, std::span<const float> b);
float SquaredDistance(std::span<const float> a, std::span<const float> b);
float L1Distance(std::span<const float> a, std::span<const float> b);
void Axpy(float alpha, std::span<const float> x, std::span<float> y);
void Scale(std::span<float> x, float alpha);
void GemvRowMajor(const float* matrix, size_t rows, size_t cols,
                  const float* x, float* out);
void SquaredDistanceRows(const float* matrix, size_t rows, size_t cols,
                         const float* x, float* out);
}  // namespace scalar

}  // namespace simd
}  // namespace kelpie

#endif  // KELPIE_MATH_SIMD_H_
