#ifndef KELPIE_MATH_QUANT_H_
#define KELPIE_MATH_QUANT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "math/matrix.h"

namespace kelpie {
namespace quant {

/// Per-row symmetric int8 quantization of embedding tables, int8 candidate
/// sweeps, and certified error bounds (DESIGN.md §15).
///
/// The quantized sweep is a *pruner, never a source of truth*: it returns,
/// for every row r, a double `approx[r]` and a double `err[r]` such that the
/// value the exact float kernel (simd::GemvRowMajor /
/// simd::SquaredDistanceRows) would compute for that row is guaranteed to
/// lie in [approx[r] - err[r], approx[r] + err[r]]. Callers classify rows
/// against that interval and re-score only the uncertain band through the
/// exact kernels, so every reported score, rank and shortlist stays
/// byte-identical with the quantized path on or off.
///
/// The int8 kernels accumulate in int32, which is exact (|q| <= 127, so a
/// row of up to ~130k columns cannot overflow); they are therefore
/// trivially bit-identical across the scalar/SSE2/AVX2 backends. All the
/// double-precision scaling and bound arithmetic lives in shared
/// backend-independent code, so approx/err are byte-identical on every
/// backend too (kernel_equivalence_test pins this).

/// cols above which the int32 accumulator of a +/-127 x +/-127 product
/// stream could overflow; quantization refuses larger tables.
inline constexpr size_t kMaxQuantCols = (1u << 31) / (127u * 127u);

/// A per-row symmetrically quantized matrix plus the cached per-row
/// statistics the error bounds need. Immutable once built.
struct QuantizedTable {
  size_t rows = 0;
  size_t cols = 0;
  /// Row-major int8 codes; row r is data[r*cols .. r*cols+cols).
  std::vector<int8_t> data;
  /// Per-row scale s_r = max|row| / 127 (0 for all-zero rows).
  std::vector<double> scale;
  /// Per-row exact reconstruction L1 error B_r = sum_j |row_j - s_r*q_j|,
  /// accumulated in double at quantize time.
  std::vector<double> recon_l1;
  /// Per-row max_j |row_j| (double).
  std::vector<double> max_abs;
  /// Per-row sum_j |row_j| (double).
  std::vector<double> l1_norm;
  /// Per-row sum_j row_j^2 (double) — the ||r||² term of the squared
  /// distance decomposition.
  std::vector<double> sq_norm;
  /// Per-row finiteness flag; rows containing NaN/Inf get err = +Inf from
  /// the sweeps (always re-checked exactly).
  std::vector<uint8_t> finite;
  /// Matrix::version() of the source table at build time (staleness check).
  uint64_t source_version = 0;

  std::span<const int8_t> Row(size_t r) const {
    return std::span<const int8_t>(data.data() + r * cols, cols);
  }
};

/// A quantized query vector with the same per-vector statistics.
struct QuantizedVec {
  size_t cols = 0;
  std::vector<int8_t> data;
  double scale = 0.0;
  double recon_l1 = 0.0;
  double max_abs = 0.0;
  double l1_norm = 0.0;
  double sq_norm = 0.0;
  bool finite = true;
};

/// Quantizes `table` row by row. Returns nullptr when the shape cannot be
/// quantized safely (cols > kMaxQuantCols). Non-finite rows are stored as
/// zero codes with finite=false.
std::shared_ptr<const QuantizedTable> QuantizeRowMajor(const Matrix& table);

/// Quantizes a query vector. `out.finite` is false when the vector contains
/// NaN/Inf (callers must fall back to the exact sweep).
QuantizedVec QuantizeVec(std::span<const float> x);

/// out[r] = sum_j matrix_q[r][j] * x_q[j], exact int32 accumulation.
/// Bit-identical across backends by construction. Codes must lie in
/// [-127, 127] (the quantizer clamps): the AVX2 path's abs/sign maddubs
/// pairing is exact on that range but would misread -128.
void GemvRowMajorI8(const int8_t* matrix, size_t rows, size_t cols,
                    const int8_t* x, int32_t* out);

/// Approximate dot sweep: for every row r, approx[r] estimates the exact
/// float kernel value fl(Dot(row_r, x)) and err[r] certifies
///   fl(Dot(row_r, x)) ∈ [approx[r] - err[r], approx[r] + err[r]].
/// Non-finite rows/queries get err = +Inf.
void ApproxDots(const QuantizedTable& table, const QuantizedVec& x,
                std::span<double> approx, std::span<double> err);

/// Approximate squared-distance sweep (the SquaredDistanceRowsI8
/// counterpart): the same certified-interval contract against
/// fl(SquaredDistance(row_r, x)). approx[r] may be slightly negative; the
/// exact float value is still inside the interval.
void ApproxSquaredDistances(const QuantizedTable& table,
                            const QuantizedVec& x, std::span<double> approx,
                            std::span<double> err);

/// Guaranteed-superset top-K shortlist over certified intervals.
///
/// `largest` = true: rows are ranked by value descending (dot-model
/// scores); false: ascending (distances — smaller is better). Let S be the
/// set of rows whose *exact* float kernel value ties or beats the K-th best
/// exact value (the strongest, tie-break-proof form of "true top-K"). The
/// returned index list always contains S. `slack` widens the threshold to
/// the (K+slack)-th certified bound for extra safety margin; the list is in
/// ascending row order.
///
/// For `largest` = false the guarantee additionally survives the -sqrt
/// transform the distance models apply after the sweep: a multiplicative
/// guard band absorbs float sqrt rounding collisions, so the shortlist is a
/// superset of the top-K by *final score* as well.
std::vector<size_t> SelectShortlist(std::span<const double> approx,
                                    std::span<const double> err, size_t k,
                                    size_t slack, bool largest);

/// Thread-safe per-model cache of one QuantizedTable, invalidated by the
/// source Matrix's version counter. Models hold one as a mutable member;
/// post-training mimic updates, baseline perturbations and LoadParameters
/// all bump the matrix version, so the next Get() rebuilds instead of
/// serving a stale table (relevance_engine_test pins this).
class TableCache {
 public:
  TableCache() = default;
  /// Copying a model must not share or carry over the cache.
  TableCache(const TableCache&) {}
  TableCache& operator=(const TableCache&) { return *this; }

  /// The quantized form of `table`, rebuilt iff table.version() differs
  /// from the cached build. Returns nullptr when `table` is not quantizable
  /// (see QuantizeRowMajor).
  std::shared_ptr<const QuantizedTable> Get(const Matrix& table) const;

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const QuantizedTable> cached_;
};

/// Reference implementation of the int8 kernel, plain code, always
/// compiled; the dispatching kernel must match it bit for bit on any
/// backend (kernel_equivalence_test).
namespace scalar {
void GemvRowMajorI8(const int8_t* matrix, size_t rows, size_t cols,
                    const int8_t* x, int32_t* out);
}  // namespace scalar

}  // namespace quant
}  // namespace kelpie

#endif  // KELPIE_MATH_QUANT_H_
