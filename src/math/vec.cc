#include "math/vec.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "math/simd.h"

namespace kelpie {

// Dot/Axpy/Scale/SquaredDistance/L1Distance delegate to the simd layer;
// all its backends follow the 8-lane reduction contract (math/simd.h), so
// results are identical regardless of KELPIE_SIMD.

float Dot(std::span<const float> a, std::span<const float> b) {
  return simd::Dot(a, b);
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  simd::Axpy(alpha, x, y);
}

void Scale(std::span<float> x, float alpha) { simd::Scale(x, alpha); }

void Fill(std::span<float> x, float value) {
  std::fill(x.begin(), x.end(), value);
}

void Copy(std::span<const float> src, std::span<float> dst) {
  KELPIE_DCHECK(src.size() == dst.size());
  if (!src.empty()) {
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

float SquaredNorm(std::span<const float> x) { return Dot(x, x); }

float Norm(std::span<const float> x) { return std::sqrt(SquaredNorm(x)); }

float L1Norm(std::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) {
    acc += std::fabs(v);
  }
  return acc;
}

float SquaredDistance(std::span<const float> a, std::span<const float> b) {
  return simd::SquaredDistance(a, b);
}

float L1Distance(std::span<const float> a, std::span<const float> b) {
  return simd::L1Distance(a, b);
}

bool ProjectToL2Ball(std::span<float> x, float radius) {
  float norm = Norm(x);
  if (norm > radius && norm > 0.0f) {
    Scale(x, radius / norm);
    return true;
  }
  return false;
}

double LogSumExp(std::span<const float> scores) {
  KELPIE_DCHECK(!scores.empty());
  float max_score = *std::max_element(scores.begin(), scores.end());
  double acc = 0.0;
  for (float s : scores) {
    acc += std::exp(static_cast<double>(s - max_score));
  }
  return static_cast<double>(max_score) + std::log(acc);
}

void SoftmaxInPlace(std::span<float> scores) {
  if (scores.empty()) return;
  float max_score = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (float& s : scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (float& s : scores) {
    s = static_cast<float>(s / total);
  }
}

}  // namespace kelpie
