#ifndef KELPIE_MATH_RNG_H_
#define KELPIE_MATH_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kelpie {

/// Complete serializable state of an Rng stream. Capturing it and loading
/// it into any Rng (same process or a later one) continues the stream at
/// exactly the draw where it was captured — the substrate of byte-identical
/// training checkpoint resume (ml/checkpoint.h).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  /// Box–Muller keeps a cached second normal; it is part of the stream
  /// position (dropping it would shift every later Normal() draw).
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All stochastic steps in the library — embedding
/// initialization, batch shuffling, negative sampling, the Explanation
/// Builder's probabilistic early stop, dataset generation — draw from
/// explicitly passed `Rng` instances, so every experiment is reproducible
/// bit-for-bit from its seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal draw (Box–Muller, cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Draws `count` distinct indices from [0, population) without
  /// replacement; `count` must be <= population. Order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t population,
                                               size_t count);

  /// Forks an independent generator whose stream is a deterministic function
  /// of this generator's state; used to give parallelizable sub-tasks their
  /// own streams.
  Rng Fork();

  /// Captures the full stream position. LoadState(SaveState()) is a no-op;
  /// a generator loaded with a captured state produces exactly the sequence
  /// the capturing generator would have produced next.
  RngState SaveState() const;
  void LoadState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples an index from a Zipf(s) distribution over [0, n). Used by the
/// synthetic dataset generators to obtain the heavily skewed entity-degree
/// distributions that real LP datasets exhibit.
size_t SampleZipf(Rng& rng, size_t n, double exponent);

}  // namespace kelpie

#endif  // KELPIE_MATH_RNG_H_
