#include "math/quant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

// Backend selection, mirroring simd.cc: exactly one of the three is
// compiled into the dispatching kernel; the scalar reference is always
// compiled. The int8 kernel accumulates in int32, which is exact, so every
// backend returns identical integers by construction — the macros exist so
// the KELPIE_SIMD=off/sse2 builds stay honest about what they execute.
#if defined(KELPIE_SIMD_DISABLE)
#define KELPIE_QUANT_BACKEND 0
#elif defined(KELPIE_SIMD_FORCE_SSE2) && defined(__SSE2__)
#define KELPIE_QUANT_BACKEND 1
#elif defined(__AVX2__)
#define KELPIE_QUANT_BACKEND 2
#elif defined(__SSE2__)
#define KELPIE_QUANT_BACKEND 1
#else
#define KELPIE_QUANT_BACKEND 0
#endif

#if KELPIE_QUANT_BACKEND > 0
#include <immintrin.h>
#endif

// The bound sweeps stream half a dozen per-row stat arrays; without a
// no-alias promise the compiler must assume the output spans overlap them
// and gives up on vectorizing the double math.
#if defined(_MSC_VER)
#define KELPIE_QUANT_RESTRICT __restrict
#else
#define KELPIE_QUANT_RESTRICT __restrict__
#endif

namespace kelpie {
namespace quant {

// ---------------------------------------------------------------------------
// Scalar reference.
// ---------------------------------------------------------------------------

namespace scalar {

void GemvRowMajorI8(const int8_t* matrix, size_t rows, size_t cols,
                    const int8_t* x, int32_t* out) {
  for (size_t r = 0; r < rows; ++r) {
    const int8_t* row = matrix + r * cols;
    int32_t acc = 0;
    for (size_t j = 0; j < cols; ++j) {
      acc += static_cast<int32_t>(row[j]) * static_cast<int32_t>(x[j]);
    }
    out[r] = acc;
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// SIMD backends. Never _mm*_maddubs_epi16 here: it is u8 x s8 with
// saturating pair adds. Sign-extend to int16 and use madd_epi16, whose
// int32 pair sums are exact for |q| <= 127.
// ---------------------------------------------------------------------------

#if KELPIE_QUANT_BACKEND == 2

namespace {
namespace avx2 {

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  size_t i = 0;
  // 32 codes per step via |a| (u8) x sign(b, a): the products equal
  // a_j*b_j exactly, and with codes clamped to [-127, 127] each i16 pair
  // sum of maddubs is at most 2*127*127 = 32258 < 32767, so the saturating
  // instruction never actually saturates. -128 never occurs (quantize
  // clamps), which maddubs with abs/sign would get wrong. Two independent
  // accumulators hide the add latency chain; integer adds are exact, so
  // the split cannot change the result.
  for (; i + 64 <= n; i += 64) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i aw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
    const __m256i bw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
    const __m256i pairs =
        _mm256_maddubs_epi16(_mm256_abs_epi8(av), _mm256_sign_epi8(bv, av));
    const __m256i pairs2 =
        _mm256_maddubs_epi16(_mm256_abs_epi8(aw), _mm256_sign_epi8(bw, aw));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(pairs2, ones));
  }
  acc = _mm256_add_epi32(acc, acc2);
  for (; i + 32 <= n; i += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i pairs =
        _mm256_maddubs_epi16(_mm256_abs_epi8(av), _mm256_sign_epi8(bv, av));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  for (; i + 16 <= n; i += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  // Integer adds are associative, so any reduction order is exact; the
  // fixed tree just mirrors the float kernels' style.
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

}  // namespace avx2
}  // namespace

#endif  // KELPIE_QUANT_BACKEND == 2

#if KELPIE_QUANT_BACKEND == 1

namespace {
namespace sse2 {

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // SSE2 has no cvtepi8_epi16; sign-extend by interleaving with the
    // comparison mask (all-ones bytes for negative inputs).
    const __m128i sa = _mm_cmpgt_epi8(zero, av);
    const __m128i sb = _mm_cmpgt_epi8(zero, bv);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_unpacklo_epi8(av, sa),
                                            _mm_unpacklo_epi8(bv, sb)));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_unpackhi_epi8(av, sa),
                                            _mm_unpackhi_epi8(bv, sb)));
  }
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int32_t sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

}  // namespace sse2
}  // namespace

#endif  // KELPIE_QUANT_BACKEND == 1

void GemvRowMajorI8(const int8_t* matrix, size_t rows, size_t cols,
                    const int8_t* x, int32_t* out) {
#if KELPIE_QUANT_BACKEND == 2
  for (size_t r = 0; r < rows; ++r) {
    out[r] = avx2::DotI8(matrix + r * cols, x, cols);
  }
#elif KELPIE_QUANT_BACKEND == 1
  for (size_t r = 0; r < rows; ++r) {
    out[r] = sse2::DotI8(matrix + r * cols, x, cols);
  }
#else
  scalar::GemvRowMajorI8(matrix, rows, cols, x, out);
#endif
}

// ---------------------------------------------------------------------------
// Quantization (backend-independent; all statistics in double).
// ---------------------------------------------------------------------------

namespace {

/// Quantizes one row into `q`, filling the per-row statistics. Returns
/// false when the row contains NaN/Inf (q is zeroed, stats left 0).
bool QuantizeRow(std::span<const float> row, int8_t* q, double& scale,
                 double& recon_l1, double& max_abs, double& l1_norm,
                 double& sq_norm) {
  scale = recon_l1 = max_abs = l1_norm = sq_norm = 0.0;
  double m = 0.0;
  for (float v : row) {
    if (!std::isfinite(v)) {
      std::fill(q, q + row.size(), static_cast<int8_t>(0));
      return false;
    }
    m = std::max(m, std::fabs(static_cast<double>(v)));
  }
  max_abs = m;
  if (m == 0.0) {
    std::fill(q, q + row.size(), static_cast<int8_t>(0));
    return true;
  }
  scale = m / 127.0;
  for (size_t j = 0; j < row.size(); ++j) {
    const double v = static_cast<double>(row[j]);
    long code = std::lround(v / scale);
    code = std::clamp<long>(code, -127, 127);
    q[j] = static_cast<int8_t>(code);
    recon_l1 += std::fabs(v - scale * static_cast<double>(code));
    l1_norm += std::fabs(v);
    sq_norm += v * v;
  }
  return true;
}

/// Relative cushion multiplying every certified bound: covers the double
/// rounding of the bound arithmetic itself plus the sub-ULP slivers the
/// derivation's inequalities ignore (DESIGN.md §15). Tightness only affects
/// pruning rate, never correctness, so it is deliberately generous.
constexpr double kBoundInflation = 1.0002;
/// Absolute double-rounding allowance relative to the magnitudes involved.
constexpr double kDoubleRounding = 1e-12;

// Quantization error of the *real* dot product against the integer
// approximation: |sum(r.x) - s_r*s_x*dot_q| <= E with
//   E = max_abs_r * recon_l1_x + max_abs_x * recon_l1_r
//       + 0.5 * s_r * recon_l1_x.
// Inlined into both sweeps below (the restrict-pointer loops keep the
// exact same evaluation order).

/// Forward-error coefficient of the exact float kernel's 8-lane reduction
/// over n terms: each lane runs ~n/8 sequential adds plus the 3-level tree
/// plus one rounding per multiply; (n/8 + 8) * 2^-23 doubles the textbook
/// count as cushion.
double FloatSweepGamma(size_t n, double extra) {
  return (static_cast<double>(n) / 8.0 + 8.0 + extra) *
         std::ldexp(1.0, -23);
}

}  // namespace

std::shared_ptr<const QuantizedTable> QuantizeRowMajor(const Matrix& table) {
  if (table.cols() > kMaxQuantCols) return nullptr;
  auto out = std::make_shared<QuantizedTable>();
  const size_t rows = table.rows();
  const size_t cols = table.cols();
  out->rows = rows;
  out->cols = cols;
  out->data.resize(rows * cols);
  out->scale.resize(rows);
  out->recon_l1.resize(rows);
  out->max_abs.resize(rows);
  out->l1_norm.resize(rows);
  out->sq_norm.resize(rows);
  out->finite.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    out->finite[r] = QuantizeRow(table.Row(r), out->data.data() + r * cols,
                                 out->scale[r], out->recon_l1[r],
                                 out->max_abs[r], out->l1_norm[r],
                                 out->sq_norm[r])
                         ? 1
                         : 0;
  }
  out->source_version = table.version();
  return out;
}

QuantizedVec QuantizeVec(std::span<const float> x) {
  QuantizedVec out;
  out.cols = x.size();
  out.data.resize(x.size());
  out.finite = QuantizeRow(x, out.data.data(), out.scale, out.recon_l1,
                           out.max_abs, out.l1_norm, out.sq_norm);
  return out;
}

void ApproxDots(const QuantizedTable& table, const QuantizedVec& x,
                std::span<double> approx, std::span<double> err) {
  KELPIE_CHECK(x.cols == table.cols);
  KELPIE_CHECK(approx.size() == table.rows && err.size() == table.rows);
  thread_local std::vector<int32_t> dots;
  dots.resize(table.rows);
  GemvRowMajorI8(table.data.data(), table.rows, table.cols, x.data.data(),
                 dots.data());
  const double inf = std::numeric_limits<double>::infinity();
  const double gamma = FloatSweepGamma(table.cols, 0.0);
  // Branch-free body over restrict pointers so the compiler can vectorize
  // the double math; the non-finite-row select compiles to a blend.
  const size_t rows = table.rows;
  const double* KELPIE_QUANT_RESTRICT t_scale = table.scale.data();
  const double* KELPIE_QUANT_RESTRICT t_recon = table.recon_l1.data();
  const double* KELPIE_QUANT_RESTRICT t_max = table.max_abs.data();
  const double* KELPIE_QUANT_RESTRICT t_l1 = table.l1_norm.data();
  const uint8_t* KELPIE_QUANT_RESTRICT t_fin = table.finite.data();
  const int32_t* KELPIE_QUANT_RESTRICT d = dots.data();
  double* KELPIE_QUANT_RESTRICT ap = approx.data();
  double* KELPIE_QUANT_RESTRICT ep = err.data();
  const double x_scale = x.scale;
  const double x_recon = x.recon_l1;
  const double x_max = x.max_abs;
  const double x_l1 = x.l1_norm;
  const bool x_fin = x.finite;
  for (size_t r = 0; r < rows; ++r) {
    const double a = t_scale[r] * x_scale * static_cast<double>(d[r]);
    ap[r] = a;
    const double e_quant =
        t_max[r] * x_recon + x_max * t_recon[r] + 0.5 * t_scale[r] * x_recon;
    // The float kernel's accumulation error is relative to the sum of
    // absolute products, bounded either way around.
    const double s_abs = std::min(t_max[r] * x_l1, x_max * t_l1[r]);
    const double bound = kBoundInflation * (e_quant + gamma * s_abs) +
                         kDoubleRounding * std::fabs(a);
    ep[r] = (t_fin[r] != 0 && x_fin) ? bound : inf;
  }
}

void ApproxSquaredDistances(const QuantizedTable& table,
                            const QuantizedVec& x, std::span<double> approx,
                            std::span<double> err) {
  KELPIE_CHECK(x.cols == table.cols);
  KELPIE_CHECK(approx.size() == table.rows && err.size() == table.rows);
  thread_local std::vector<int32_t> dots;
  dots.resize(table.rows);
  GemvRowMajorI8(table.data.data(), table.rows, table.cols, x.data.data(),
                 dots.data());
  const double inf = std::numeric_limits<double>::infinity();
  // The float kernel rounds the subtraction and the square before the
  // 8-lane accumulation; the extra per-term roundings ride in `extra`.
  const double gamma = FloatSweepGamma(table.cols, 4.0);
  // Branch-free over restrict pointers, as in ApproxDots.
  const size_t rows = table.rows;
  const double* KELPIE_QUANT_RESTRICT t_scale = table.scale.data();
  const double* KELPIE_QUANT_RESTRICT t_recon = table.recon_l1.data();
  const double* KELPIE_QUANT_RESTRICT t_max = table.max_abs.data();
  const double* KELPIE_QUANT_RESTRICT t_sq = table.sq_norm.data();
  const uint8_t* KELPIE_QUANT_RESTRICT t_fin = table.finite.data();
  const int32_t* KELPIE_QUANT_RESTRICT d = dots.data();
  double* KELPIE_QUANT_RESTRICT ap = approx.data();
  double* KELPIE_QUANT_RESTRICT ep = err.data();
  const double x_scale = x.scale;
  const double x_recon = x.recon_l1;
  const double x_max = x.max_abs;
  const double x_sq = x.sq_norm;
  const bool x_fin = x.finite;
  for (size_t r = 0; r < rows; ++r) {
    // ||r - x||^2 = ||r||^2 - 2<r,x> + ||x||^2 with cached double norms.
    const double a = t_sq[r] -
                     2.0 * t_scale[r] * x_scale * static_cast<double>(d[r]) +
                     x_sq;
    ap[r] = a;
    const double e_dot =
        2.0 * (t_max[r] * x_recon + x_max * t_recon[r] +
               0.5 * t_scale[r] * x_recon);
    // The real distance is nonnegative and <= a + e_dot; that also bounds
    // the float kernel's sum of (a_j - b_j)^2 terms.
    const double d_max = std::max(0.0, a + e_dot);
    const double bound = kBoundInflation * (e_dot + gamma * d_max) +
                         kDoubleRounding * (std::fabs(a) + d_max);
    ep[r] = (t_fin[r] != 0 && x_fin) ? bound : inf;
  }
}

std::vector<size_t> SelectShortlist(std::span<const double> approx,
                                    std::span<const double> err, size_t k,
                                    size_t slack, bool largest) {
  KELPIE_CHECK(approx.size() == err.size());
  const size_t n = approx.size();
  std::vector<size_t> out;
  if (n == 0 || k == 0) return out;
  const size_t k_wide = std::min(n, k + slack);
  if (k_wide >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  // Guard band absorbing float sqrt rounding collisions for the distance
  // models' -sqrt transform: distinct distances within this relative band
  // can round to equal final scores, so they must not be pruned apart.
  // 2*2^-24 relative on sqrt => ~5e-7 on the squares; 1e-5 is generous.
  constexpr double kSqrtGuard = 1e-5;
  // The threshold is the k_wide-th best certified bound — an order
  // statistic, so a size-k_wide heap over one pass beats nth_element's
  // full-array partition by a wide margin at shortlist sizes (k_wide is
  // tens, n is the entity count). Heap scratch is reused across calls.
  thread_local std::vector<double> heap;
  heap.clear();
  heap.reserve(k_wide);
  if (largest) {
    // Threshold: the k_wide-th largest certified lower bound (min-heap of
    // the k_wide largest keys; the root is the threshold). Any row whose
    // exact value could reach it stays.
    const auto cmp = std::greater<double>();
    for (size_t i = 0; i < n; ++i) {
      const double key = approx[i] - err[i];
      if (heap.size() < k_wide) {
        heap.push_back(key);
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (key > heap.front()) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = key;
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    const double kth = heap.front();
    for (size_t i = 0; i < n; ++i) {
      if (approx[i] + err[i] >= kth) out.push_back(i);
    }
  } else {
    // Distances: the k_wide-th smallest certified upper bound (max-heap of
    // the k_wide smallest keys), widened by the sqrt guard band.
    for (size_t i = 0; i < n; ++i) {
      const double key = approx[i] + err[i];
      if (heap.size() < k_wide) {
        heap.push_back(key);
        std::push_heap(heap.begin(), heap.end());
      } else if (key < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = key;
        std::push_heap(heap.begin(), heap.end());
      }
    }
    const double kth = heap.front();
    const double limit = kth >= 0.0 ? kth * (1.0 + kSqrtGuard) : kth;
    for (size_t i = 0; i < n; ++i) {
      if (approx[i] - err[i] <= limit) out.push_back(i);
    }
  }
  return out;
}

std::shared_ptr<const QuantizedTable> TableCache::Get(
    const Matrix& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cached_ != nullptr && cached_->source_version == table.version() &&
      cached_->rows == table.rows() && cached_->cols == table.cols()) {
    return cached_;
  }
  cached_ = QuantizeRowMajor(table);
  return cached_;
}

}  // namespace quant
}  // namespace kelpie
