#include "math/stats.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace kelpie {

namespace {

/// Converts values to average-ranks (1-based; ties share their mean rank).
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                      + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  KELPIE_CHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double mean_x = std::accumulate(xs.begin(), xs.end(), 0.0) /
                  static_cast<double>(n);
  double mean_y = std::accumulate(ys.begin(), ys.end(), 0.0) /
                  static_cast<double>(n);
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mean_x;
    double dy = ys[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  KELPIE_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

}  // namespace kelpie
