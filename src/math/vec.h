#ifndef KELPIE_MATH_VEC_H_
#define KELPIE_MATH_VEC_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace kelpie {

/// Dense float vector kernels. Embeddings are stored as contiguous float
/// rows; these free functions implement the handful of BLAS-1 style
/// operations the models need. All functions require equal-length spans.
/// The reducing kernels (Dot, SquaredDistance, L1Distance) and the
/// element-wise updates (Axpy, Scale) delegate to the vectorized backend
/// in math/simd.h, whose lane-determinism contract keeps results
/// bit-identical across KELPIE_SIMD settings.

/// Inner product of `a` and `b`.
float Dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void Scale(std::span<float> x, float alpha);

/// Fills `x` with `value`.
void Fill(std::span<float> x, float value);

/// Copies `src` into `dst`.
void Copy(std::span<const float> src, std::span<float> dst);

/// Squared Euclidean norm.
float SquaredNorm(std::span<const float> x);

/// Euclidean norm.
float Norm(std::span<const float> x);

/// L1 norm (sum of absolute values).
float L1Norm(std::span<const float> x);

/// Squared Euclidean distance between `a` and `b`.
float SquaredDistance(std::span<const float> a, std::span<const float> b);

/// L1 distance between `a` and `b`.
float L1Distance(std::span<const float> a, std::span<const float> b);

/// Projects `x` onto the L2 ball of the given radius (used by TransE's
/// entity-norm constraint and by gradient clipping). Returns true when the
/// vector was actually rescaled; no-op (false) if the norm is already
/// within the ball.
bool ProjectToL2Ball(std::span<float> x, float radius);

/// Numerically stable log(sum(exp(scores))).
double LogSumExp(std::span<const float> scores);

/// In-place numerically stable softmax.
void SoftmaxInPlace(std::span<float> scores);

/// Logistic sigmoid.
inline float Sigmoid(float x) {
  if (x >= 0) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace kelpie

#endif  // KELPIE_MATH_VEC_H_
