#include "math/rng.h"

#include <cmath>

#include "common/logging.h"

namespace kelpie {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  KELPIE_CHECK(bound > 0);
  // Lemire's unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  KELPIE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) {
    u1 = UniformDouble();
  }
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t population,
                                                  size_t count) {
  KELPIE_CHECK(count <= population);
  // Partial Fisher–Yates over an index vector; O(population) setup is fine
  // at the scales this library operates at.
  std::vector<size_t> indices(population);
  for (size_t i = 0; i < population; ++i) {
    indices[i] = i;
  }
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(population - i));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::LoadState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

size_t SampleZipf(Rng& rng, size_t n, double exponent) {
  KELPIE_CHECK(n > 0);
  KELPIE_CHECK(exponent > 1.0);
  // Inverse-CDF via rejection on the continuous Zipf envelope
  // (Devroye, Non-Uniform Random Variate Generation).
  if (n == 1) return 0;
  const double s = exponent;
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = rng.UniformDouble();
    double v = rng.UniformDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

}  // namespace kelpie
