#ifndef KELPIE_MATH_STATS_H_
#define KELPIE_MATH_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace kelpie {

/// Single-pass mean/variance accumulator (Welford). Used for the
/// explanation-length statistics of Table 5 and for timing aggregation.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by N).
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Population standard deviation.
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series has zero variance. Used to report the
/// preliminary-vs-true-relevance correlation of Figure 4.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation between two equal-length series (average
/// ranks for ties).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

}  // namespace kelpie

#endif  // KELPIE_MATH_STATS_H_
