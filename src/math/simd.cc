#include "math/simd.h"

#include <cmath>

#include "common/logging.h"

// Backend selection. Exactly one of the three is compiled into the
// dispatching kernels; the scalar reference below is always compiled.
//   KELPIE_SIMD_DISABLE     — forced scalar (KELPIE_SIMD=off)
//   KELPIE_SIMD_FORCE_SSE2  — pin SSE2 even when the TU is compiled with
//                             AVX2 flags (KELPIE_SIMD=sse2)
//   otherwise               — widest instruction set the compiler flags
//                             enable (__AVX2__ > __SSE2__ > scalar)
#if defined(KELPIE_SIMD_DISABLE)
#define KELPIE_SIMD_BACKEND 0
#elif defined(KELPIE_SIMD_FORCE_SSE2) && defined(__SSE2__)
#define KELPIE_SIMD_BACKEND 1
#elif defined(__AVX2__)
#define KELPIE_SIMD_BACKEND 2
#elif defined(__SSE2__)
#define KELPIE_SIMD_BACKEND 1
#else
#define KELPIE_SIMD_BACKEND 0
#endif

#if KELPIE_SIMD_BACKEND > 0
#include <immintrin.h>
#endif

namespace kelpie {
namespace simd {

namespace {

/// The fixed reduction tree of the 8 virtual lanes (lane contract, step 3).
inline float ReduceLanes(const float lanes[8]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar reference: the lane contract written out in plain code.
// ---------------------------------------------------------------------------

namespace scalar {

float Dot(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < a.size(); ++i) {
    lanes[i & 7] += a[i] * b[i];
  }
  return ReduceLanes(lanes);
}

float SquaredDistance(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    lanes[i & 7] += d * d;
  }
  return ReduceLanes(lanes);
}

float L1Distance(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < a.size(); ++i) {
    lanes[i & 7] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  KELPIE_DCHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void Scale(std::span<float> x, float alpha) {
  for (float& v : x) {
    v *= alpha;
  }
}

void GemvRowMajor(const float* matrix, size_t rows, size_t cols,
                  const float* x, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Dot(std::span<const float>(matrix + r * cols, cols),
                 std::span<const float>(x, cols));
  }
}

void SquaredDistanceRows(const float* matrix, size_t rows, size_t cols,
                         const float* x, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredDistance(std::span<const float>(matrix + r * cols, cols),
                             std::span<const float>(x, cols));
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 backend: the 8 virtual lanes are one 256-bit register.
// ---------------------------------------------------------------------------

#if KELPIE_SIMD_BACKEND == 2

namespace {
namespace avx2 {

inline __m256 AbsMask() {
  return _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
}

float Dot(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 7] += a[i] * b[i];
  }
  return ReduceLanes(lanes);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i & 7] += d * d;
  }
  return ReduceLanes(lanes);
}

float L1Distance(const float* a, const float* b, size_t n) {
  const __m256 mask = AbsMask();
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_and_ps(mask, d));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 7] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i),
                                   _mm256_mul_ps(av, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Scale(float* x, float alpha, size_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), av));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

/// Four-row block: one pass over `x` feeds four accumulators, each the
/// virtual-lane accumulator of its own row (so out[r] is bit-identical to
/// a standalone Dot of that row).
void Gemv4(const float* r0, const float* r1, const float* r2, const float* r3,
           const float* x, size_t cols, float* out) {
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= cols; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_loadu_ps(r0 + i), xv));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_loadu_ps(r1 + i), xv));
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_loadu_ps(r2 + i), xv));
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_loadu_ps(r3 + i), xv));
  }
  alignas(32) float l0[8], l1[8], l2[8], l3[8];
  _mm256_store_ps(l0, a0);
  _mm256_store_ps(l1, a1);
  _mm256_store_ps(l2, a2);
  _mm256_store_ps(l3, a3);
  for (; i < cols; ++i) {
    const float xi = x[i];
    l0[i & 7] += r0[i] * xi;
    l1[i & 7] += r1[i] * xi;
    l2[i & 7] += r2[i] * xi;
    l3[i & 7] += r3[i] * xi;
  }
  out[0] = ReduceLanes(l0);
  out[1] = ReduceLanes(l1);
  out[2] = ReduceLanes(l2);
  out[3] = ReduceLanes(l3);
}

void SqDist4(const float* r0, const float* r1, const float* r2,
             const float* r3, const float* x, size_t cols, float* out) {
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= cols; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(r0 + i), xv);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(d, d));
    d = _mm256_sub_ps(_mm256_loadu_ps(r1 + i), xv);
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(d, d));
    d = _mm256_sub_ps(_mm256_loadu_ps(r2 + i), xv);
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(d, d));
    d = _mm256_sub_ps(_mm256_loadu_ps(r3 + i), xv);
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(d, d));
  }
  alignas(32) float l0[8], l1[8], l2[8], l3[8];
  _mm256_store_ps(l0, a0);
  _mm256_store_ps(l1, a1);
  _mm256_store_ps(l2, a2);
  _mm256_store_ps(l3, a3);
  for (; i < cols; ++i) {
    const float xi = x[i];
    float d = r0[i] - xi;
    l0[i & 7] += d * d;
    d = r1[i] - xi;
    l1[i & 7] += d * d;
    d = r2[i] - xi;
    l2[i & 7] += d * d;
    d = r3[i] - xi;
    l3[i & 7] += d * d;
  }
  out[0] = ReduceLanes(l0);
  out[1] = ReduceLanes(l1);
  out[2] = ReduceLanes(l2);
  out[3] = ReduceLanes(l3);
}

}  // namespace avx2
}  // namespace

#endif  // KELPIE_SIMD_BACKEND == 2

// ---------------------------------------------------------------------------
// SSE2 backend: the 8 virtual lanes are two 128-bit registers (lanes 0-3
// in the low register, 4-7 in the high one).
// ---------------------------------------------------------------------------

#if KELPIE_SIMD_BACKEND == 1

namespace {
namespace sse2 {

inline __m128 AbsMask() {
  return _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
}

float Dot(const float* a, const float* b, size_t n) {
  __m128 lo = _mm_setzero_ps();
  __m128 hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    hi = _mm_add_ps(
        hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  alignas(16) float lanes[8];
  _mm_store_ps(lanes, lo);
  _mm_store_ps(lanes + 4, hi);
  for (; i < n; ++i) {
    lanes[i & 7] += a[i] * b[i];
  }
  return ReduceLanes(lanes);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  __m128 lo = _mm_setzero_ps();
  __m128 hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    lo = _mm_add_ps(lo, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    hi = _mm_add_ps(hi, _mm_mul_ps(d, d));
  }
  alignas(16) float lanes[8];
  _mm_store_ps(lanes, lo);
  _mm_store_ps(lanes + 4, hi);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i & 7] += d * d;
  }
  return ReduceLanes(lanes);
}

float L1Distance(const float* a, const float* b, size_t n) {
  const __m128 mask = AbsMask();
  __m128 lo = _mm_setzero_ps();
  __m128 hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    lo = _mm_add_ps(lo, _mm_and_ps(mask, d));
    d = _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    hi = _mm_add_ps(hi, _mm_and_ps(mask, d));
  }
  alignas(16) float lanes[8];
  _mm_store_ps(lanes, lo);
  _mm_store_ps(lanes + 4, hi);
  for (; i < n; ++i) {
    lanes[i & 7] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m128 av = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(av, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Scale(float* x, float alpha, size_t n) {
  const __m128 av = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), av));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

void Gemv4(const float* r0, const float* r1, const float* r2, const float* r3,
           const float* x, size_t cols, float* out) {
  __m128 lo0 = _mm_setzero_ps(), hi0 = _mm_setzero_ps();
  __m128 lo1 = _mm_setzero_ps(), hi1 = _mm_setzero_ps();
  __m128 lo2 = _mm_setzero_ps(), hi2 = _mm_setzero_ps();
  __m128 lo3 = _mm_setzero_ps(), hi3 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= cols; i += 8) {
    const __m128 xlo = _mm_loadu_ps(x + i);
    const __m128 xhi = _mm_loadu_ps(x + i + 4);
    lo0 = _mm_add_ps(lo0, _mm_mul_ps(_mm_loadu_ps(r0 + i), xlo));
    hi0 = _mm_add_ps(hi0, _mm_mul_ps(_mm_loadu_ps(r0 + i + 4), xhi));
    lo1 = _mm_add_ps(lo1, _mm_mul_ps(_mm_loadu_ps(r1 + i), xlo));
    hi1 = _mm_add_ps(hi1, _mm_mul_ps(_mm_loadu_ps(r1 + i + 4), xhi));
    lo2 = _mm_add_ps(lo2, _mm_mul_ps(_mm_loadu_ps(r2 + i), xlo));
    hi2 = _mm_add_ps(hi2, _mm_mul_ps(_mm_loadu_ps(r2 + i + 4), xhi));
    lo3 = _mm_add_ps(lo3, _mm_mul_ps(_mm_loadu_ps(r3 + i), xlo));
    hi3 = _mm_add_ps(hi3, _mm_mul_ps(_mm_loadu_ps(r3 + i + 4), xhi));
  }
  alignas(16) float l0[8], l1[8], l2[8], l3[8];
  _mm_store_ps(l0, lo0);
  _mm_store_ps(l0 + 4, hi0);
  _mm_store_ps(l1, lo1);
  _mm_store_ps(l1 + 4, hi1);
  _mm_store_ps(l2, lo2);
  _mm_store_ps(l2 + 4, hi2);
  _mm_store_ps(l3, lo3);
  _mm_store_ps(l3 + 4, hi3);
  for (; i < cols; ++i) {
    const float xi = x[i];
    l0[i & 7] += r0[i] * xi;
    l1[i & 7] += r1[i] * xi;
    l2[i & 7] += r2[i] * xi;
    l3[i & 7] += r3[i] * xi;
  }
  out[0] = ReduceLanes(l0);
  out[1] = ReduceLanes(l1);
  out[2] = ReduceLanes(l2);
  out[3] = ReduceLanes(l3);
}

void SqDist4(const float* r0, const float* r1, const float* r2,
             const float* r3, const float* x, size_t cols, float* out) {
  __m128 lo0 = _mm_setzero_ps(), hi0 = _mm_setzero_ps();
  __m128 lo1 = _mm_setzero_ps(), hi1 = _mm_setzero_ps();
  __m128 lo2 = _mm_setzero_ps(), hi2 = _mm_setzero_ps();
  __m128 lo3 = _mm_setzero_ps(), hi3 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= cols; i += 8) {
    const __m128 xlo = _mm_loadu_ps(x + i);
    const __m128 xhi = _mm_loadu_ps(x + i + 4);
    __m128 d = _mm_sub_ps(_mm_loadu_ps(r0 + i), xlo);
    lo0 = _mm_add_ps(lo0, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r0 + i + 4), xhi);
    hi0 = _mm_add_ps(hi0, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r1 + i), xlo);
    lo1 = _mm_add_ps(lo1, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r1 + i + 4), xhi);
    hi1 = _mm_add_ps(hi1, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r2 + i), xlo);
    lo2 = _mm_add_ps(lo2, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r2 + i + 4), xhi);
    hi2 = _mm_add_ps(hi2, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r3 + i), xlo);
    lo3 = _mm_add_ps(lo3, _mm_mul_ps(d, d));
    d = _mm_sub_ps(_mm_loadu_ps(r3 + i + 4), xhi);
    hi3 = _mm_add_ps(hi3, _mm_mul_ps(d, d));
  }
  alignas(16) float l0[8], l1[8], l2[8], l3[8];
  _mm_store_ps(l0, lo0);
  _mm_store_ps(l0 + 4, hi0);
  _mm_store_ps(l1, lo1);
  _mm_store_ps(l1 + 4, hi1);
  _mm_store_ps(l2, lo2);
  _mm_store_ps(l2 + 4, hi2);
  _mm_store_ps(l3, lo3);
  _mm_store_ps(l3 + 4, hi3);
  for (; i < cols; ++i) {
    const float xi = x[i];
    float d = r0[i] - xi;
    l0[i & 7] += d * d;
    d = r1[i] - xi;
    l1[i & 7] += d * d;
    d = r2[i] - xi;
    l2[i & 7] += d * d;
    d = r3[i] - xi;
    l3[i & 7] += d * d;
  }
  out[0] = ReduceLanes(l0);
  out[1] = ReduceLanes(l1);
  out[2] = ReduceLanes(l2);
  out[3] = ReduceLanes(l3);
}

}  // namespace sse2
}  // namespace

#endif  // KELPIE_SIMD_BACKEND == 1

// ---------------------------------------------------------------------------
// Dispatch (resolved at compile time).
// ---------------------------------------------------------------------------

Backend ActiveBackend() {
#if KELPIE_SIMD_BACKEND == 2
  return Backend::kAvx2;
#elif KELPIE_SIMD_BACKEND == 1
  return Backend::kSse2;
#else
  return Backend::kScalar;
#endif
}

const char* BackendName() {
#if KELPIE_SIMD_BACKEND == 2
  return "avx2";
#elif KELPIE_SIMD_BACKEND == 1
  return "sse2";
#else
  return "scalar";
#endif
}

float Dot(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
#if KELPIE_SIMD_BACKEND == 2
  return avx2::Dot(a.data(), b.data(), a.size());
#elif KELPIE_SIMD_BACKEND == 1
  return sse2::Dot(a.data(), b.data(), a.size());
#else
  return scalar::Dot(a, b);
#endif
}

float SquaredDistance(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
#if KELPIE_SIMD_BACKEND == 2
  return avx2::SquaredDistance(a.data(), b.data(), a.size());
#elif KELPIE_SIMD_BACKEND == 1
  return sse2::SquaredDistance(a.data(), b.data(), a.size());
#else
  return scalar::SquaredDistance(a, b);
#endif
}

float L1Distance(std::span<const float> a, std::span<const float> b) {
  KELPIE_DCHECK(a.size() == b.size());
#if KELPIE_SIMD_BACKEND == 2
  return avx2::L1Distance(a.data(), b.data(), a.size());
#elif KELPIE_SIMD_BACKEND == 1
  return sse2::L1Distance(a.data(), b.data(), a.size());
#else
  return scalar::L1Distance(a, b);
#endif
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  KELPIE_DCHECK(x.size() == y.size());
#if KELPIE_SIMD_BACKEND == 2
  avx2::Axpy(alpha, x.data(), y.data(), x.size());
#elif KELPIE_SIMD_BACKEND == 1
  sse2::Axpy(alpha, x.data(), y.data(), x.size());
#else
  scalar::Axpy(alpha, x, y);
#endif
}

void Scale(std::span<float> x, float alpha) {
#if KELPIE_SIMD_BACKEND == 2
  avx2::Scale(x.data(), alpha, x.size());
#elif KELPIE_SIMD_BACKEND == 1
  sse2::Scale(x.data(), alpha, x.size());
#else
  scalar::Scale(x, alpha);
#endif
}

void GemvRowMajor(const float* matrix, size_t rows, size_t cols,
                  const float* x, float* out) {
#if KELPIE_SIMD_BACKEND == 0
  scalar::GemvRowMajor(matrix, rows, cols, x, out);
#else
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* base = matrix + r * cols;
#if KELPIE_SIMD_BACKEND == 2
    avx2::Gemv4(base, base + cols, base + 2 * cols, base + 3 * cols, x, cols,
                out + r);
#else
    sse2::Gemv4(base, base + cols, base + 2 * cols, base + 3 * cols, x, cols,
                out + r);
#endif
  }
  for (; r < rows; ++r) {
    out[r] = Dot(std::span<const float>(matrix + r * cols, cols),
                 std::span<const float>(x, cols));
  }
#endif
}

void SquaredDistanceRows(const float* matrix, size_t rows, size_t cols,
                         const float* x, float* out) {
#if KELPIE_SIMD_BACKEND == 0
  scalar::SquaredDistanceRows(matrix, rows, cols, x, out);
#else
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* base = matrix + r * cols;
#if KELPIE_SIMD_BACKEND == 2
    avx2::SqDist4(base, base + cols, base + 2 * cols, base + 3 * cols, x,
                  cols, out + r);
#else
    sse2::SqDist4(base, base + cols, base + 2 * cols, base + 3 * cols, x,
                  cols, out + r);
#endif
  }
  for (; r < rows; ++r) {
    out[r] = SquaredDistance(std::span<const float>(matrix + r * cols, cols),
                             std::span<const float>(x, cols));
  }
#endif
}

}  // namespace simd
}  // namespace kelpie
