#ifndef KELPIE_CORE_KELPIE_H_
#define KELPIE_CORE_KELPIE_H_

#include <memory>

#include "common/budget.h"
#include "core/explanation_builder.h"
#include "core/prefilter.h"
#include "core/relevance_engine.h"

namespace kelpie {

/// Per-extraction resource limits. Default-constructed = unlimited: every
/// limit is opt-in, and an unlimited extraction behaves exactly as if this
/// layer did not exist.
struct ExtractionLimits {
  /// Work-unit budget per extraction call; 0 = unlimited. One unit = one
  /// non-homologous post-training, so a necessary candidate costs 1 and a
  /// sufficient candidate costs its conversion-set size. Budget truncation
  /// is bitwise-deterministic across machines and thread counts.
  uint64_t work_budget = 0;
  /// Wall-clock timeout for this extraction, in seconds; 0 = none. Not
  /// reproducible — use work_budget when determinism matters.
  double timeout_seconds = 0.0;
  /// Absolute steady-clock deadline overlay (infinite by default); combined
  /// with timeout_seconds via Deadline::Earliest.
  Deadline deadline;
  /// Cooperative cancellation; the CLI wires this to SIGINT/SIGTERM.
  CancelToken cancel;
};

/// Bundled options of the three Kelpie modules.
struct KelpieOptions {
  PreFilterOptions prefilter;
  RelevanceEngineOptions engine;
  ExplanationBuilderOptions builder;
  /// Convenience override: worker threads for parallel explanation
  /// extraction. When > 0 it overwrites engine.num_threads; 0 defers to
  /// engine.num_threads (default 1 = sequential). Any value produces
  /// bitwise-identical explanations — see ExplanationBuilder's chunked
  /// visiting semantics.
  size_t num_threads = 0;
};

/// The Kelpie framework facade (Figure 1): wires the Pre-Filter, the
/// Relevance Engine and the Explanation Builder over a trained model and
/// its dataset, and exposes the two extraction entry points.
///
/// The model and dataset must outlive the Kelpie instance. One instance may
/// explain any number of predictions; homologous-mimic caches are kept
/// across calls (they are keyed by entity and query).
///
/// Typical use:
///
///   Kelpie kelpie(*model, dataset, {});
///   Explanation x = kelpie.ExplainNecessary(prediction);
///   std::cout << x.ToString(dataset) << "\n";
class Kelpie {
 public:
  Kelpie(const LinkPredictionModel& model, const Dataset& dataset,
         KelpieOptions options = {});

  /// Extracts the necessary explanation of `prediction`: the smallest set
  /// of source-entity training facts whose removal is expected to change
  /// the predicted answer. `limits` bounds the extraction; the returned
  /// Explanation's `completeness` says whether a limit truncated the
  /// search.
  Explanation ExplainNecessary(const Triple& prediction,
                               PredictionTarget target =
                                   PredictionTarget::kTail,
                               const CandidateObserver& observer = nullptr,
                               const ExtractionLimits& limits = {});

  /// Extracts the sufficient explanation of `prediction`: the smallest set
  /// of source-entity training facts that converts a random set C of other
  /// entities to the same answer. The conversion set is sampled internally;
  /// pass `conversion_set_out` to retrieve it (e.g. for end-to-end
  /// verification).
  Explanation ExplainSufficient(const Triple& prediction,
                                PredictionTarget target =
                                    PredictionTarget::kTail,
                                std::vector<EntityId>* conversion_set_out =
                                    nullptr,
                                const CandidateObserver& observer = nullptr,
                                const ExtractionLimits& limits = {});

  /// Sufficient explanation against a caller-provided conversion set (used
  /// by the end-to-end pipeline so that all frameworks convert the same
  /// entities).
  Explanation ExplainSufficientWithSet(
      const Triple& prediction, PredictionTarget target,
      const std::vector<EntityId>& conversion_set,
      const CandidateObserver& observer = nullptr,
      const ExtractionLimits& limits = {});

  RelevanceEngine& engine() { return engine_; }
  const PreFilter& prefilter() const { return prefilter_; }
  const KelpieOptions& options() const { return options_; }

 private:
  KelpieOptions options_;
  PreFilter prefilter_;
  RelevanceEngine engine_;
  ExplanationBuilder builder_;
};

}  // namespace kelpie

#endif  // KELPIE_CORE_KELPIE_H_
