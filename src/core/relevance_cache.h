#ifndef KELPIE_CORE_RELEVANCE_CACHE_H_
#define KELPIE_CORE_RELEVANCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "kgraph/triple.h"
#include "models/model.h"

namespace kelpie {

/// -----------------------------------------------------------------------
/// Persistent cross-request post-training cache (DESIGN.md §13).
///
/// A post-trained mimic is a pure function of (model parameters, engine
/// seed, entity, exact fact sequence) — see RelevanceEngine::PostTrain's
/// seeding contract. That purity is what makes it cacheable across
/// requests, processes and restarts without touching result bytes: a
/// cached vector is bitwise identical to what a recompute would produce,
/// so explanations are byte-identical with the cache off, cold, warm, or
/// corrupted-then-recovered, at any thread or pool count.
///
/// The store is content-addressed: entries are keyed by the model
/// fingerprint (held in the file header), the mimicked entity and a hash
/// of the exact fact sequence, and every lookup verifies the stored
/// (entity, facts) exactly — a 64-bit hash collision degrades to an
/// uncached recompute, never to a wrong vector (the same
/// no-silent-wrong-answers stance as the engine's exact-key rank cache).
///
/// Persistence is *untrusted*. The file is written through WriteFileAtomic
/// (temp + fsync + rename) and framed with per-entry CRC32C checksums;
/// loading silently drops whatever does not verify — a torn tail is
/// truncated, a bit-flipped entry is evicted, a stale fingerprint
/// invalidates everything. DataLoss is a cache miss, never an error: Open
/// always succeeds on any file bytes and the worst outcome is recomputing.
///
/// Concurrency: GetOrCompute is thread-safe with per-entry single-flight —
/// concurrent extractions (including across serving-pool instances sharing
/// one cache) needing the same mimic block behind one computation instead
/// of duplicating it. Flush/Purge may run concurrently with lookups.
/// -----------------------------------------------------------------------

struct RelevanceCacheOptions {
  /// Backing file; empty = in-memory only (Flush is a no-op, Open never
  /// reads). Missing files are a valid empty cache.
  std::string path;
  /// Model fingerprint (ComputeModelFingerprint). A file whose header
  /// carries a different fingerprint is invalidated wholesale at Open.
  uint64_t fingerprint = 0;
  /// In-memory (and flushed) size bound; least-recently-used entries are
  /// evicted when an insert would exceed it. 0 = unbounded.
  size_t max_bytes = 64u << 20;
};

/// Point-in-time counters of one cache instance (process-local; the same
/// values feed the kelpie_relevance_cache_* registry families).
struct RelevanceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups that blocked behind another thread computing the same entry.
  uint64_t waits = 0;
  /// 64-bit key collisions detected by exact verification (recomputed
  /// uncached).
  uint64_t collisions = 0;
  uint64_t evict_lru = 0;
  /// Entries dropped at load because their CRC or structure did not verify.
  uint64_t evict_corrupt = 0;
  /// Whole-file invalidations due to a fingerprint mismatch at load.
  uint64_t evict_fingerprint = 0;
  /// Loads that found (and truncated) an incomplete trailing entry.
  uint64_t torn_tail = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Offline summary of a cache file (for `kelpie cache stats`): parses with
/// the same recovery rules as Open but verifies against the file's own
/// fingerprint, so it reports what a matching model would load.
struct RelevanceCacheFileInfo {
  uint64_t fingerprint = 0;
  size_t entries = 0;
  size_t payload_bytes = 0;
  size_t file_bytes = 0;
  uint64_t corrupt_entries = 0;
  bool torn_tail = false;
  /// False when the header itself is missing/corrupt (loads as empty).
  bool header_ok = false;
};

class RelevanceCache {
 public:
  using ComputeFn = std::function<std::vector<float>()>;

  /// Opens the cache, loading whatever verifies from options.path. Never
  /// fails: any corruption degrades to fewer loaded entries.
  static std::shared_ptr<RelevanceCache> Open(RelevanceCacheOptions options);

  /// Returns the mimic for (entity, facts), computing it via `compute` on a
  /// miss (single-flight: concurrent callers of the same key wait for one
  /// computation). Non-finite compute results (diverged post-trainings,
  /// including failpoint-injected ones) are returned but never stored —
  /// poison must not outlive the request that injected it.
  std::vector<float> GetOrCompute(EntityId entity,
                                  const std::vector<Triple>& facts,
                                  const ComputeFn& compute);

  /// Serializes every ready entry (least-recently-used first, so a
  /// truncated tail costs the hottest entries last) and writes it through
  /// WriteFileAtomic. No-op without a path. Failpoints, applied to the
  /// serialized image to simulate a crashed or bit-flipping writer:
  ///   "cache.partial_write"     — the image ends mid-entry (torn tail).
  ///   "cache.bit_flip"          — one payload bit of the last entry flips.
  ///   "cache.stale_fingerprint" — the stored fingerprint is perturbed.
  Status Flush();

  /// Drops every entry; with a path, also rewrites the file to an empty
  /// (header-only) cache.
  Status Purge();

  /// Structural invalidation after an incremental KG update (DESIGN.md
  /// §16): drops every ready entry whose mimicked entity is in `entities`
  /// or whose stored fact sequence mentions one of them — those keys hash
  /// fact sets that no longer exist in the updated graph, so they could
  /// never be hit again and would otherwise linger until LRU eviction.
  /// Memory-only (call Flush to persist); in-flight computations are left
  /// alone. Returns the number of entries dropped.
  size_t PurgeEntities(const std::vector<EntityId>& entities);

  RelevanceCacheStats stats() const;

  const RelevanceCacheOptions& options() const { return options_; }

  /// Parses `path` with Open's recovery rules and reports what it holds.
  /// Fails only when the file cannot be read at all; corrupt contents are
  /// reported, not errored.
  static Result<RelevanceCacheFileInfo> Inspect(const std::string& path);

  RelevanceCache(const RelevanceCache&) = delete;
  RelevanceCache& operator=(const RelevanceCache&) = delete;

 private:
  /// One cached mimic. Key fields are set once at insertion (under the
  /// index lock) and immutable afterwards; `mimic` is published under `mu`
  /// with `ready`/`done` exactly like the engine's rank-cache slots.
  struct Entry {
    std::mutex mu;
    bool ready = false;
    std::atomic<bool> done{false};
    EntityId entity = kNoEntity;
    std::vector<Triple> facts;
    std::vector<float> mimic;
    size_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;
    bool in_lru = false;
  };

  struct CacheMetrics {
    metrics::Counter& hit;
    metrics::Counter& miss;
    metrics::Counter& wait;
    metrics::Counter& collision;
    metrics::Counter& evict_lru;
    metrics::Counter& evict_corrupt;
    metrics::Counter& evict_fingerprint;
    metrics::Counter& torn_tail;
    metrics::Gauge& entries;
    metrics::Gauge& bytes;

    static CacheMetrics Resolve();
  };

  explicit RelevanceCache(RelevanceCacheOptions options);

  /// Loads options_.path, dropping whatever does not verify. Counters
  /// record what was dropped.
  void LoadFromDisk();

  /// Inserts a ready entry (load path). Index lock must be held.
  void InsertReadyLocked(EntityId entity, std::vector<Triple> facts,
                         std::vector<float> mimic);

  /// Publishes `entry` into the LRU accounting and evicts past max_bytes.
  void AccountAndEvict(const std::shared_ptr<Entry>& entry, uint64_t key);

  void UpdateGaugesLocked();

  static size_t EntryBytes(size_t num_facts, size_t dim);
  static uint64_t KeyHash(EntityId entity, const std::vector<Triple>& facts);

  RelevanceCacheOptions options_;
  CacheMetrics metrics_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> index_;
  /// Least-recently-used at the front; touched keys move to the back.
  std::list<uint64_t> lru_;
  size_t bytes_ = 0;
  size_t ready_entries_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> evict_lru_{0};
  std::atomic<uint64_t> evict_corrupt_{0};
  std::atomic<uint64_t> evict_fingerprint_{0};
  std::atomic<uint64_t> torn_tail_{0};
};

/// Fingerprint of everything a cached mimic depends on: the architecture
/// name, the embedding shapes, the post-training hyperparameters, a CRC32C
/// over every learned parameter, and the engine seed. Models differing in
/// any of these produce different mimics, so their caches must not mix;
/// the serving pool's instances are loaded from one file and share one
/// fingerprint by construction.
uint64_t ComputeModelFingerprint(const LinkPredictionModel& model,
                                 uint64_t engine_seed);

}  // namespace kelpie

#endif  // KELPIE_CORE_RELEVANCE_CACHE_H_
