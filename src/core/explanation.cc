#include "core/explanation.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "kgraph/paths.h"

namespace kelpie {

std::string Explanation::ToString(const Dataset& dataset) const {
  std::string out =
      kind == ExplanationKind::kNecessary ? "necessary{" : "sufficient{";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) out += ", ";
    out += dataset.TripleToString(facts[i]);
  }
  out += "} relevance=";
  out += FormatDouble(relevance, 3);
  if (!accepted) out += " (best-effort)";
  return out;
}

std::string ExplainWithPaths(const Explanation& explanation,
                             const Dataset& dataset,
                             const Triple& prediction,
                             PredictionTarget target) {
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::string out;
  for (const Triple& fact : explanation.facts) {
    out += dataset.TripleToString(fact);
    out += "\n";
    const EntityId other = fact.head == source ? fact.tail : fact.head;
    if (other == predicted) {
      out += "    (mentions the predicted entity directly)\n";
      continue;
    }
    std::vector<PathStep> path = ShortestPath(
        dataset.train_graph(), other, predicted, &prediction);
    if (path.empty()) {
      out += "    (no training path to the predicted entity)\n";
      continue;
    }
    out += "    via ";
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) out += ", ";
      const PathStep& step = path[i];
      const std::string& rel =
          dataset.relations().NameOf(step.triple.relation);
      if (step.forward) {
        out += dataset.entities().NameOf(step.triple.head) + " -" + rel +
               "-> " + dataset.entities().NameOf(step.triple.tail);
      } else {
        out += dataset.entities().NameOf(step.triple.tail) + " <-" + rel +
               "- " + dataset.entities().NameOf(step.triple.head);
      }
    }
    out += "\n";
  }
  return out;
}

Triple TransferFact(const Triple& fact, EntityId from, EntityId to) {
  KELPIE_CHECK(fact.Mentions(from));
  Triple out = fact;
  if (out.head == from) out.head = to;
  if (out.tail == from) out.tail = to;
  return out;
}

}  // namespace kelpie
