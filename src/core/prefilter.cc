#include "core/prefilter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "kgraph/graph.h"

namespace kelpie {

namespace {

/// The endpoint of `fact` other than `source` (for self-loops, the source
/// itself).
EntityId OtherEndpoint(const Triple& fact, EntityId source) {
  return fact.head == source ? fact.tail : fact.head;
}

/// Relation-incidence signature of an entity: counts of each (relation,
/// direction) among its training facts, used as a proxy for its type.
std::vector<double> RelationSignature(const GraphIndex& graph,
                                      size_t num_relations, EntityId e) {
  std::vector<double> sig(2 * num_relations, 0.0);
  for (uint32_t i : graph.FactIndicesOf(e)) {
    const Triple& t = graph.triples()[i];
    if (t.head == e) {
      sig[static_cast<size_t>(t.relation)] += 1.0;
    }
    if (t.tail == e) {
      sig[num_relations + static_cast<size_t>(t.relation)] += 1.0;
    }
  }
  return sig;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

std::vector<double> PreFilter::TopologyGamma(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& facts) const {
  const EntityId predicted = PredictedEntity(prediction, target);
  const EntityId source = SourceEntity(prediction, target);
  // One undirected BFS from the predicted entity gives the shortest-path
  // distance of every fact endpoint; the prediction triple is ignored so
  // closeness is measured independently of the edge being explained.
  std::vector<int32_t> dist =
      DistancesFrom(dataset_.train_graph(), predicted, &prediction);
  std::vector<double> gamma(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    EntityId q = OtherEndpoint(facts[i], source);
    int32_t d = dist[static_cast<size_t>(q)];
    // q == predicted gives γ = 0, the best value, matching the paper's
    // example. Unreachable endpoints get +inf (always filtered last).
    gamma[i] = (d < 0) ? std::numeric_limits<double>::infinity()
                       : static_cast<double>(d);
  }
  return gamma;
}

std::vector<double> PreFilter::TypeGamma(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& facts) const {
  const EntityId predicted = PredictedEntity(prediction, target);
  const EntityId source = SourceEntity(prediction, target);
  const GraphIndex& graph = dataset_.train_graph();
  std::vector<double> target_sig =
      RelationSignature(graph, dataset_.num_relations(), predicted);
  std::vector<double> gamma(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    EntityId q = OtherEndpoint(facts[i], source);
    std::vector<double> sig =
        RelationSignature(graph, dataset_.num_relations(), q);
    gamma[i] = 1.0 - CosineSimilarity(target_sig, sig);
  }
  return gamma;
}

std::vector<double> PreFilter::Promisingness(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& facts) const {
  switch (options_.policy) {
    case PromisingnessPolicy::kTopology:
      return TopologyGamma(prediction, target, facts);
    case PromisingnessPolicy::kTypeSimilarity:
      return TypeGamma(prediction, target, facts);
    case PromisingnessPolicy::kNone:
      return std::vector<double>(facts.size(), 0.0);
  }
  return {};
}

std::vector<Triple> PreFilter::MostPromisingFacts(
    const Triple& prediction, PredictionTarget target) const {
  const EntityId source = SourceEntity(prediction, target);
  std::vector<Triple> facts = dataset_.train_graph().FactsOf(source);
  // The prediction itself may appear in training when explaining training
  // facts or applying the framework to wrong predictions; never offer it
  // as its own explanation.
  facts.erase(std::remove(facts.begin(), facts.end(), prediction),
              facts.end());
  if (options_.policy == PromisingnessPolicy::kNone ||
      facts.size() <= options_.top_k) {
    return facts;
  }
  std::vector<double> gamma = Promisingness(prediction, target, facts);
  std::vector<size_t> order(facts.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable sort keeps the original fact order among equals, making the
  // selection deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return gamma[a] < gamma[b]; });
  std::vector<Triple> out;
  out.reserve(options_.top_k);
  for (size_t i = 0; i < options_.top_k; ++i) {
    out.push_back(facts[order[i]]);
  }
  return out;
}

}  // namespace kelpie
