#include "core/relevance_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "eval/ranking.h"

namespace kelpie {

namespace {

/// Below this many lookups a linear scan beats hashing (tiny candidates are
/// the common case: most explanations have 1-4 facts).
constexpr size_t kLinearScanLimit = 8;

/// Removes every triple of `to_remove` from `facts` (exact matches).
std::vector<Triple> WithoutFacts(const std::vector<Triple>& facts,
                                 const std::vector<Triple>& to_remove) {
  std::vector<Triple> out;
  out.reserve(facts.size());
  if (to_remove.size() <= kLinearScanLimit) {
    for (const Triple& f : facts) {
      if (std::find(to_remove.begin(), to_remove.end(), f) ==
          to_remove.end()) {
        out.push_back(f);
      }
    }
    return out;
  }
  const std::unordered_set<Triple, TripleHash> removed(to_remove.begin(),
                                                       to_remove.end());
  for (const Triple& f : facts) {
    if (removed.find(f) == removed.end()) {
      out.push_back(f);
    }
  }
  return out;
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of a post-training RNG stream: a pure function of the engine seed,
/// the mimicked entity, and the exact fact sequence. Two post-trainings of
/// the same (entity, facts) produce the same mimic no matter which thread
/// runs them or in which order — the keystone of schedule-independent
/// parallel extraction.
uint64_t PostTrainSeed(uint64_t engine_seed, EntityId entity,
                       const std::vector<Triple>& facts) {
  uint64_t h = Mix64(engine_seed ^ 0x7c0ffee123456789ULL);
  h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(entity)));
  h = Mix64(h ^ static_cast<uint64_t>(facts.size()));
  for (const Triple& f : facts) {
    h = Mix64(h ^ f.Key());
  }
  return h;
}

/// True when a post-trained mimic contains a non-finite value, i.e. the
/// per-candidate training diverged beyond what PR 2's recoveries repaired.
/// Ranking against such a vector would be garbage, so divergent candidates
/// degrade to a quiet-NaN relevance that the Explanation Builder skips and
/// records instead of aborting the whole extraction.
bool MimicDiverged(const std::vector<float>& mimic) {
  for (float v : mimic) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

RelevanceEngine::EngineMetrics RelevanceEngine::EngineMetrics::Resolve() {
  metrics::Registry& reg = metrics::Registry::Global();
  constexpr auto kWallClock = metrics::Determinism::kWallClock;
  const char* post_help =
      "Post-trainings run, by mimic kind (raw work-site counts; "
      "schedule-dependent under parallel extraction).";
  const char* cache_help =
      "Homologous rank cache lookups by outcome: hit (already published), "
      "miss (this lookup computed the baseline), wait (blocked behind the "
      "computing thread).";
  return EngineMetrics{
      .post_train_homologous = reg.GetCounter(
          "kelpie_engine_post_trainings_total", {{"kind", "homologous"}},
          kWallClock, post_help),
      .post_train_necessary = reg.GetCounter(
          "kelpie_engine_post_trainings_total", {{"kind", "necessary"}},
          kWallClock, post_help),
      .post_train_sufficient = reg.GetCounter(
          "kelpie_engine_post_trainings_total", {{"kind", "sufficient"}},
          kWallClock, post_help),
      .cache_hit = reg.GetCounter("kelpie_engine_rank_cache_total",
                                  {{"event", "hit"}}, kWallClock, cache_help),
      .cache_miss = reg.GetCounter("kelpie_engine_rank_cache_total",
                                   {{"event", "miss"}}, kWallClock,
                                   cache_help),
      .cache_wait = reg.GetCounter("kelpie_engine_rank_cache_total",
                                   {{"event", "wait"}}, kWallClock,
                                   cache_help),
      .diverged = reg.GetCounter(
          "kelpie_engine_diverged_post_trainings_total", {}, kWallClock,
          "Post-trainings whose mimic came out non-finite (degraded to "
          "skip-and-record)."),
  };
}

size_t RelevanceEngine::RankKeyHash::operator()(const RankKey& k) const {
  const uint64_t lo =
      (static_cast<uint64_t>(static_cast<uint32_t>(k.entity)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(k.relation));
  const uint64_t hi =
      (static_cast<uint64_t>(static_cast<uint32_t>(k.predicted)) << 32) |
      static_cast<uint64_t>(static_cast<uint8_t>(k.direction));
  return static_cast<size_t>(Mix64(Mix64(lo) ^ hi));
}

RelevanceEngine::RelevanceEngine(const LinkPredictionModel& model,
                                 const Dataset& dataset,
                                 RelevanceEngineOptions options)
    : model_(model),
      dataset_(dataset),
      options_(options),
      metrics_(EngineMetrics::Resolve()),
      rng_(options.seed) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

std::vector<float> RelevanceEngine::PostTrain(
    EntityId entity, const std::vector<Triple>& facts) {
  auto compute = [&]() -> std::vector<float> {
    post_training_count_.fetch_add(1, std::memory_order_relaxed);
    Rng rng(PostTrainSeed(options_.seed, entity, facts));
    const std::span<const float> warm_init =
        options_.warm_start_mimics ? model_.EntityEmbedding(entity)
                                   : std::span<const float>{};
    std::vector<float> mimic =
        model_.PostTrainMimic(dataset_, entity, facts, rng, warm_init);
    // Fault injection: simulate an unrecoverable per-candidate divergence.
    // Keyed on the entity so tests can poison one baseline deterministically.
    if (failpoint::Fire("engine.post_train.diverge",
                        static_cast<uint64_t>(static_cast<uint32_t>(entity))) &&
        !mimic.empty()) {
      mimic[0] = std::numeric_limits<float>::quiet_NaN();
    }
    return mimic;
  };
  // The mimic is a pure function of (model parameters, seed, entity, facts),
  // so a persistent-cache answer is bitwise identical to computing: caching
  // changes latency and post_training_count(), never result bytes.
  if (options_.relevance_cache == nullptr) return compute();
  return options_.relevance_cache->GetOrCompute(entity, facts, compute);
}

int RelevanceEngine::RankWithMimic(const Triple& prediction,
                                   PredictionTarget target, EntityId source,
                                   std::span<const float> mimic_vec) const {
  const RankingOptions ranking{options_.quantized_shortlist};
  if (target == PredictionTarget::kTail) {
    return FilteredTailRankWithHeadVec(model_, dataset_, source, mimic_vec,
                                       prediction.relation, prediction.tail,
                                       ranking);
  }
  return FilteredHeadRankWithTailVec(model_, dataset_, source, mimic_vec,
                                     prediction.relation, prediction.head,
                                     ranking);
}

int RelevanceEngine::HomologousRank(EntityId entity, const Triple& prediction,
                                    PredictionTarget target) {
  const RankKey key{
      entity, prediction.relation, PredictedEntity(prediction, target),
      static_cast<int8_t>(target == PredictionTarget::kTail ? 0 : 1)};
  // Shard on the top hash bits; the shard map re-hashes with the full
  // function, which is fine (the bits it keeps differ).
  CacheShard& shard = rank_cache_shards_[RankKeyHash{}(key) >> 60];
  std::shared_ptr<RankCacheEntry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::shared_ptr<RankCacheEntry>& slot = shard.map[key];
    if (!slot) slot = std::make_shared<RankCacheEntry>();
    entry = slot;
  }
  // A lookup that sees the published flag before taking the entry mutex is
  // a plain cache hit; one that finds the result ready only after acquiring
  // the mutex was blocked behind the computing thread (single-flight wait).
  const bool published = entry->done.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->ready) {
    metrics_.cache_miss.Increment();
    if (options_.use_original_rank_baseline) {
      // Ablation mode: compare non-homologous mimics against the original
      // entity's rank directly (no baseline post-training).
      entry->rank = RankWithMimic(prediction, target, entity,
                                  model_.EntityEmbedding(entity));
    } else {
      std::vector<Triple> facts = dataset_.train_graph().FactsOf(entity);
      std::vector<float> mimic = PostTrain(entity, facts);
      metrics_.post_train_homologous.Increment();
      // A divergent baseline poisons every candidate that shares it; cache
      // the sentinel so they all degrade to skip-and-record without
      // re-post-training the doomed mimic.
      if (MimicDiverged(mimic)) {
        metrics_.diverged.Increment();
        entry->rank = kDivergedRank;
      } else {
        entry->rank = RankWithMimic(prediction, target, entity, mimic);
      }
    }
    entry->ready = true;
    entry->done.store(true, std::memory_order_release);
  } else {
    (published ? metrics_.cache_hit : metrics_.cache_wait).Increment();
  }
  return entry->rank;
}

double RelevanceEngine::NecessaryRelevance(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& candidate) {
  const EntityId source = SourceEntity(prediction, target);
  // Algorithm 1, lines 1-2: homologous mimic h' on G^h_train and
  // non-homologous mimic h'_{-X} on G^h_train \ X.
  const int homologous_rank = HomologousRank(source, prediction, target);
  if (homologous_rank == kDivergedRank) return kDivergedRelevance;
  std::vector<Triple> facts = dataset_.train_graph().FactsOf(source);
  std::vector<Triple> reduced = WithoutFacts(facts, candidate);
  std::vector<float> mimic = PostTrain(source, reduced);
  metrics_.post_train_necessary.Increment();
  if (MimicDiverged(mimic)) {
    metrics_.diverged.Increment();
    return kDivergedRelevance;
  }
  const int removed_rank = RankWithMimic(prediction, target, source, mimic);
  // Line 5: the rank deterioration is the necessary relevance.
  return static_cast<double>(removed_rank - homologous_rank);
}

double RelevanceEngine::SufficientRelevance(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& candidate,
    const std::vector<EntityId>& conversion_set) {
  const EntityId source = SourceEntity(prediction, target);
  if (conversion_set.empty()) return 0.0;
  auto contribution = [&](size_t i) -> double {
    const EntityId c = conversion_set[i];
    // Homologous mimic c' of the entity to convert.
    const int base_rank = HomologousRank(c, prediction, target);
    if (base_rank == kDivergedRank) return kDivergedRelevance;
    if (base_rank <= 1) {
      // Already converted (post-training fluctuation); the ideal
      // improvement is zero — treat as fully achieved.
      return 1.0;
    }
    // Non-homologous mimic c'_{+X}: c's facts plus the candidate facts
    // transferred from the source entity to c.
    std::vector<Triple> facts = dataset_.train_graph().FactsOf(c);
    if (candidate.size() <= kLinearScanLimit) {
      for (const Triple& f : candidate) {
        Triple transferred = TransferFact(f, source, c);
        if (std::find(facts.begin(), facts.end(), transferred) ==
            facts.end()) {
          facts.push_back(transferred);
        }
      }
    } else {
      std::unordered_set<Triple, TripleHash> present(facts.begin(),
                                                     facts.end());
      for (const Triple& f : candidate) {
        Triple transferred = TransferFact(f, source, c);
        if (present.insert(transferred).second) {
          facts.push_back(transferred);
        }
      }
    }
    std::vector<float> mimic = PostTrain(c, facts);
    metrics_.post_train_sufficient.Increment();
    if (MimicDiverged(mimic)) {
      metrics_.diverged.Increment();
      return kDivergedRelevance;
    }
    const int added_rank = RankWithMimic(prediction, target, c, mimic);
    // Line 7: achieved over ideal rank improvement.
    const double achieved = static_cast<double>(base_rank - added_rank);
    const double ideal = static_cast<double>(base_rank - 1);
    return achieved / ideal;
  };

  std::vector<double> parts;
  if (pool_ != nullptr && conversion_set.size() > 1) {
    parts = ParallelMap(*pool_, conversion_set.size(), contribution);
  } else {
    parts.reserve(conversion_set.size());
    for (size_t i = 0; i < conversion_set.size(); ++i) {
      parts.push_back(contribution(i));
    }
  }
  // Accumulate in conversion-set order: the sum (and thus the relevance) is
  // bitwise identical whatever the completion order was.
  double total = 0.0;
  for (double p : parts) total += p;
  return total / static_cast<double>(conversion_set.size());
}

std::vector<EntityId> RelevanceEngine::SampleConversionSet(
    const Triple& prediction, PredictionTarget target) {
  return SampleConversionSet(prediction, target, rng_);
}

std::vector<EntityId> RelevanceEngine::SampleConversionSet(
    const Triple& prediction, PredictionTarget target, Rng& rng) {
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::vector<EntityId> out;
  const size_t n = dataset_.num_entities();
  // Rejection-sample entities whose (unmodified) prediction of the target
  // answer is not already rank 1 and that have at least one training fact.
  size_t attempts = 0;
  const size_t max_attempts = 50 * options_.conversion_set_size + 200;
  while (out.size() < options_.conversion_set_size &&
         attempts < max_attempts) {
    ++attempts;
    EntityId c = static_cast<EntityId>(rng.UniformUint64(n));
    if (c == source || c == predicted) continue;
    if (std::find(out.begin(), out.end(), c) != out.end()) continue;
    if (dataset_.train_graph().Degree(c) == 0) continue;
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    if (dataset_.IsKnown(converted)) continue;
    int rank = FilteredRank(model_, dataset_, converted, target,
                            RankingOptions{options_.quantized_shortlist});
    if (rank <= 1) continue;  // model already predicts it; nothing to convert
    out.push_back(c);
  }
  return out;
}

void RelevanceEngine::ClearCaches() {
  for (CacheShard& shard : rank_cache_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace kelpie
