#include "core/relevance_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "eval/ranking.h"

namespace kelpie {

namespace {

/// Removes every triple of `to_remove` from `facts` (exact matches).
std::vector<Triple> WithoutFacts(const std::vector<Triple>& facts,
                                 const std::vector<Triple>& to_remove) {
  std::vector<Triple> out;
  out.reserve(facts.size());
  for (const Triple& f : facts) {
    if (std::find(to_remove.begin(), to_remove.end(), f) == to_remove.end()) {
      out.push_back(f);
    }
  }
  return out;
}

uint64_t RankCacheKey(EntityId entity, const Triple& prediction,
                      PredictionTarget target) {
  uint64_t key = static_cast<uint32_t>(entity);
  key = key * 1315423911ULL + static_cast<uint32_t>(prediction.relation);
  key = key * 1315423911ULL +
        static_cast<uint32_t>(PredictedEntity(prediction, target));
  key = key * 1315423911ULL + (target == PredictionTarget::kTail ? 1 : 2);
  return key;
}

}  // namespace

RelevanceEngine::RelevanceEngine(const LinkPredictionModel& model,
                                 const Dataset& dataset,
                                 RelevanceEngineOptions options)
    : model_(model),
      dataset_(dataset),
      options_(options),
      rng_(options.seed) {}

std::vector<float> RelevanceEngine::PostTrain(
    EntityId entity, const std::vector<Triple>& facts) {
  ++post_training_count_;
  return model_.PostTrainMimic(dataset_, entity, facts, rng_);
}

int RelevanceEngine::RankWithMimic(const Triple& prediction,
                                   PredictionTarget target, EntityId source,
                                   std::span<const float> mimic_vec) const {
  if (target == PredictionTarget::kTail) {
    return FilteredTailRankWithHeadVec(model_, dataset_, source, mimic_vec,
                                       prediction.relation, prediction.tail);
  }
  return FilteredHeadRankWithTailVec(model_, dataset_, source, mimic_vec,
                                     prediction.relation, prediction.head);
}

int RelevanceEngine::HomologousRank(EntityId entity, const Triple& prediction,
                                    PredictionTarget target) {
  const uint64_t key = RankCacheKey(entity, prediction, target);
  auto it = homologous_rank_cache_.find(key);
  if (it != homologous_rank_cache_.end()) {
    return it->second;
  }
  int rank;
  if (options_.use_original_rank_baseline) {
    // Ablation mode: compare non-homologous mimics against the original
    // entity's rank directly (no baseline post-training).
    rank = RankWithMimic(prediction, target, entity,
                         model_.EntityEmbedding(entity));
  } else {
    std::vector<Triple> facts = dataset_.train_graph().FactsOf(entity);
    std::vector<float> mimic = PostTrain(entity, facts);
    rank = RankWithMimic(prediction, target, entity, mimic);
  }
  homologous_rank_cache_.emplace(key, rank);
  return rank;
}

double RelevanceEngine::NecessaryRelevance(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& candidate) {
  const EntityId source = SourceEntity(prediction, target);
  // Algorithm 1, lines 1-2: homologous mimic h' on G^h_train and
  // non-homologous mimic h'_{-X} on G^h_train \ X.
  const int homologous_rank = HomologousRank(source, prediction, target);
  std::vector<Triple> facts = dataset_.train_graph().FactsOf(source);
  std::vector<Triple> reduced = WithoutFacts(facts, candidate);
  std::vector<float> mimic = PostTrain(source, reduced);
  const int removed_rank = RankWithMimic(prediction, target, source, mimic);
  // Line 5: the rank deterioration is the necessary relevance.
  return static_cast<double>(removed_rank - homologous_rank);
}

double RelevanceEngine::SufficientRelevance(
    const Triple& prediction, PredictionTarget target,
    const std::vector<Triple>& candidate,
    const std::vector<EntityId>& conversion_set) {
  const EntityId source = SourceEntity(prediction, target);
  if (conversion_set.empty()) return 0.0;
  double total = 0.0;
  size_t used = 0;
  for (EntityId c : conversion_set) {
    // Homologous mimic c' of the entity to convert.
    const int base_rank = HomologousRank(c, prediction, target);
    if (base_rank <= 1) {
      // Already converted (post-training fluctuation); the ideal
      // improvement is zero — treat as fully achieved.
      total += 1.0;
      ++used;
      continue;
    }
    // Non-homologous mimic c'_{+X}: c's facts plus the candidate facts
    // transferred from the source entity to c.
    std::vector<Triple> facts = dataset_.train_graph().FactsOf(c);
    for (const Triple& f : candidate) {
      Triple transferred = TransferFact(f, source, c);
      if (std::find(facts.begin(), facts.end(), transferred) == facts.end()) {
        facts.push_back(transferred);
      }
    }
    std::vector<float> mimic = PostTrain(c, facts);
    const int added_rank = RankWithMimic(prediction, target, c, mimic);
    // Line 7: achieved over ideal rank improvement.
    const double achieved = static_cast<double>(base_rank - added_rank);
    const double ideal = static_cast<double>(base_rank - 1);
    total += achieved / ideal;
    ++used;
  }
  return used == 0 ? 0.0 : total / static_cast<double>(used);
}

std::vector<EntityId> RelevanceEngine::SampleConversionSet(
    const Triple& prediction, PredictionTarget target) {
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::vector<EntityId> out;
  const size_t n = dataset_.num_entities();
  // Rejection-sample entities whose (unmodified) prediction of the target
  // answer is not already rank 1 and that have at least one training fact.
  size_t attempts = 0;
  const size_t max_attempts = 50 * options_.conversion_set_size + 200;
  while (out.size() < options_.conversion_set_size &&
         attempts < max_attempts) {
    ++attempts;
    EntityId c = static_cast<EntityId>(rng_.UniformUint64(n));
    if (c == source || c == predicted) continue;
    if (std::find(out.begin(), out.end(), c) != out.end()) continue;
    if (dataset_.train_graph().Degree(c) == 0) continue;
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    if (dataset_.IsKnown(converted)) continue;
    int rank = FilteredRank(model_, dataset_, converted, target);
    if (rank <= 1) continue;  // model already predicts it; nothing to convert
    out.push_back(c);
  }
  return out;
}

void RelevanceEngine::ClearCaches() { homologous_rank_cache_.clear(); }

}  // namespace kelpie
