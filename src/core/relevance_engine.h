#ifndef KELPIE_CORE_RELEVANCE_ENGINE_H_
#define KELPIE_CORE_RELEVANCE_ENGINE_H_

#include <array>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/explanation.h"
#include "core/relevance_cache.h"
#include "eval/ranking.h"
#include "kgraph/dataset.h"
#include "math/rng.h"
#include "models/model.h"

namespace kelpie {

/// Sentinel rank cached for a homologous baseline whose post-training
/// diverged (non-finite mimic): real ranks are always >= 1.
inline constexpr int kDivergedRank = -1;

/// Relevance reported for a candidate whose post-training diverged. A quiet
/// NaN, never a finite value: it can neither pass an acceptance threshold
/// nor displace a best-so-far candidate, and the Explanation Builder skips
/// and records it instead of aborting the extraction.
inline constexpr double kDivergedRelevance =
    std::numeric_limits<double>::quiet_NaN();

/// Options of the Relevance Engine.
struct RelevanceEngineOptions {
  /// Entities drawn per prediction for the sufficient scenario's conversion
  /// set C (paper default: 10).
  size_t conversion_set_size = 10;
  /// Ablation switch: when true, relevances are computed against the
  /// *original* entity's rank instead of a homologous mimic's rank. The
  /// paper (Section 4.2) prefers the homologous baseline because it erases
  /// post-training fluctuations; this flag reproduces that design study.
  bool use_original_rank_baseline = false;
  uint64_t seed = 1234;
  /// Worker threads for relevance evaluation (mirrors
  /// EvalOptions::num_threads). The engine parallelizes the per-entity loop
  /// of SufficientRelevance, and the Explanation Builder dispatches
  /// candidate evaluations over the same pool. Every post-training draws
  /// from an RNG stream derived solely from (seed, entity, fact set), so
  /// any thread count produces the same relevances as num_threads = 1.
  /// 1 = sequential (no pool is created).
  size_t num_threads = 1;
  /// Optional persistent cross-request post-training cache (DESIGN.md §13).
  /// When set, PostTrain answers from the cache where possible; because a
  /// mimic is a pure function of (model parameters, seed, entity, facts), a
  /// cached answer is bitwise identical to a recompute and explanations are
  /// byte-identical with the cache off, cold or warm. The cache must have
  /// been opened with ComputeModelFingerprint(model, seed) of *this* engine's
  /// model and seed; engines of a serving pool share one instance, which
  /// extends single-flight across concurrent extractions.
  std::shared_ptr<RelevanceCache> relevance_cache;
  /// Warm-start post-trainings: seed every mimic row from the stored
  /// embedding of the entity it imitates instead of the architecture's
  /// random init. The mimic then starts from a converged point, which is
  /// the post-training analogue of resuming training from a checkpointed
  /// base state. Changes mimic values (deterministically — warm runs are
  /// reproducible among themselves), so a persistent relevance cache must
  /// be opened with a warm-specific fingerprint (the CLI salts it) to keep
  /// cold and warm entries from mixing.
  bool warm_start_mimics = false;
  /// Serve every filtered rank the engine computes (mimic ranks, conversion
  /// set sampling) through the certified int8 shortlist. Byte-identical to
  /// the exact sweep (RankingOptions::quantized_shortlist), so relevances
  /// and explanations are unchanged; defaults to the process-wide setting.
  bool quantized_shortlist = DefaultQuantizedShortlist();
};

/// The Relevance Engine (Section 4.2) estimates the effect that adding or
/// removing training facts would have on a prediction, without retraining
/// the whole model. Its primitive is *post-training*: a mimic entity whose
/// single embedding row is trained on a chosen fact set while all other
/// parameters stay frozen.
///
///  - A homologous mimic e' is trained on an exact replica of G^e_train and
///    approximates the behaviour of e.
///  - A non-homologous mimic is trained on a modified replica (facts
///    removed or added) and approximates the behaviour e would have shown
///    had the modification existed from the start.
///
/// Necessary relevance ξ_n (Algorithm 1) is the rank deterioration between
/// the homologous and the removal mimic; sufficient relevance ξ_s
/// (Algorithm 2) is the mean achieved fraction of the ideal rank
/// improvement over the conversion set C.
///
/// Homologous mimics and their ranks are cached: one explanation extraction
/// evaluates many candidates against the same baseline. The cache is
/// mutex-sharded with single-flight computation, so concurrent candidates
/// sharing a baseline never post-train it twice.
///
/// Thread safety: NecessaryRelevance, SufficientRelevance and RankWithMimic
/// may be called concurrently (the Explanation Builder does so when
/// num_threads > 1). SampleConversionSet and ClearCaches are not
/// thread-safe and must be called from a single thread between evaluation
/// waves.
class RelevanceEngine {
 public:
  RelevanceEngine(const LinkPredictionModel& model, const Dataset& dataset,
                  RelevanceEngineOptions options);

  /// Algorithm 1: expected rank deterioration when removing `candidate`
  /// from the source entity. Range [0, |E| - 1]; larger = more relevant.
  /// Returns kDivergedRelevance (NaN) when a post-training involved
  /// diverged — including via the `engine.post_train.diverge` failpoint.
  double NecessaryRelevance(const Triple& prediction, PredictionTarget target,
                            const std::vector<Triple>& candidate);

  /// Algorithm 2: mean ratio of achieved over ideal rank improvement when
  /// adding `candidate` (transferred) to every entity of `conversion_set`.
  /// Typically in [0, 1]; can be negative when the facts hurt. The
  /// per-entity post-trainings run across the pool when num_threads > 1;
  /// contributions are accumulated in conversion-set order, so the result
  /// is bitwise identical to the sequential one. A diverged post-training
  /// anywhere in the conversion set yields kDivergedRelevance (NaN).
  double SufficientRelevance(const Triple& prediction,
                             PredictionTarget target,
                             const std::vector<Triple>& candidate,
                             const std::vector<EntityId>& conversion_set);

  /// Draws the conversion set C for a prediction: random entities c whose
  /// prediction <c, r, t> (tail scenario; symmetric for heads) has rank
  /// greater than 1, i.e. the model does not already predict them.
  std::vector<EntityId> SampleConversionSet(const Triple& prediction,
                                            PredictionTarget target);

  /// SampleConversionSet drawing from a caller-provided RNG instead of the
  /// engine's member stream. A long-lived engine (a serving-pool instance)
  /// passes a fresh `Rng(options().seed)` per request to draw exactly the
  /// set a fresh engine's first SampleConversionSet call would draw — the
  /// member-stream variant advances `rng_` across calls, so its Nth request
  /// would diverge from a one-shot process. Same single-threaded contract
  /// as SampleConversionSet.
  std::vector<EntityId> SampleConversionSet(const Triple& prediction,
                                            PredictionTarget target, Rng& rng);

  const RelevanceEngineOptions& options() const { return options_; }

  /// Filtered rank of the predicted entity when the source entity is
  /// represented by `mimic_vec`. Exposed for tests.
  int RankWithMimic(const Triple& prediction, PredictionTarget target,
                    EntityId source, std::span<const float> mimic_vec) const;

  /// Total post-trainings run so far (the cost unit of the paper's
  /// KernelSHAP comparison).
  size_t post_training_count() const {
    return post_training_count_.load(std::memory_order_relaxed);
  }

  /// Drops the homologous-mimic caches (used between unrelated
  /// predictions to bound memory).
  void ClearCaches();

  /// The worker pool shared with the Explanation Builder; nullptr when
  /// num_threads <= 1 (sequential mode).
  ThreadPool* pool() { return pool_.get(); }

  size_t num_threads() const { return options_.num_threads; }

  const LinkPredictionModel& model() const { return model_; }
  const Dataset& dataset() const { return dataset_; }

 private:
  /// Cache key of a homologous rank: the baseline only depends on the
  /// entity and the query (relation + predicted entity + direction), never
  /// on the candidate, because the homologous fact set is always G^e_train.
  /// Keying on the full struct (with exact equality) rules out the silent
  /// wrong-rank answers a collapsed 64-bit hash key could produce.
  struct RankKey {
    EntityId entity;
    RelationId relation;
    EntityId predicted;
    int8_t direction;  // 0 = tail prediction, 1 = head prediction

    bool operator==(const RankKey&) const = default;
  };

  struct RankKeyHash {
    size_t operator()(const RankKey& k) const;
  };

  /// Single-flight cache slot: the first thread to need a baseline computes
  /// it under the entry mutex; latecomers block on that mutex instead of
  /// duplicating the post-training. `done` distinguishes a hit (the result
  /// was already published when the lookup started) from a single-flight
  /// wait (blocked behind the computing thread) for the cache counters.
  struct RankCacheEntry {
    std::mutex mu;
    bool ready = false;
    int rank = 0;
    std::atomic<bool> done{false};
  };

  struct CacheShard {
    std::mutex mu;
    std::unordered_map<RankKey, std::shared_ptr<RankCacheEntry>, RankKeyHash>
        map;
  };

  static constexpr size_t kCacheShards = 16;

  /// Post-trains a mimic of `entity` on `facts` and counts it. The RNG
  /// stream is derived from (options_.seed, entity, facts) alone, making
  /// the mimic independent of both call order and thread schedule.
  std::vector<float> PostTrain(EntityId entity,
                               const std::vector<Triple>& facts);

  /// Cached homologous mimic rank for (entity, prediction); thread-safe
  /// with single-flight computation.
  int HomologousRank(EntityId entity, const Triple& prediction,
                     PredictionTarget target);

  /// Registry handles, resolved once at construction (cold, locked lookup)
  /// and incremented lock-free at the work sites. All engine counters are
  /// metrics::Determinism::kWallClock: under parallel extraction the
  /// builder evaluates candidates speculatively, so raw post-training and
  /// cache totals are schedule-dependent (they are exact — and covered by
  /// exact-value tests — when num_threads is 1). The schedule-invariant
  /// work accounting lives in the Explanation Builder's counters, which are
  /// committed during its sequential replay.
  struct EngineMetrics {
    metrics::Counter& post_train_homologous;
    metrics::Counter& post_train_necessary;
    metrics::Counter& post_train_sufficient;
    metrics::Counter& cache_hit;
    metrics::Counter& cache_miss;
    metrics::Counter& cache_wait;
    metrics::Counter& diverged;

    static EngineMetrics Resolve();
  };

  const LinkPredictionModel& model_;
  const Dataset& dataset_;
  RelevanceEngineOptions options_;
  EngineMetrics metrics_;
  /// Only used by SampleConversionSet (single-threaded by contract).
  Rng rng_;
  std::atomic<size_t> post_training_count_{0};
  std::array<CacheShard, kCacheShards> rank_cache_shards_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kelpie

#endif  // KELPIE_CORE_RELEVANCE_ENGINE_H_
