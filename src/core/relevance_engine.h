#ifndef KELPIE_CORE_RELEVANCE_ENGINE_H_
#define KELPIE_CORE_RELEVANCE_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "core/explanation.h"
#include "kgraph/dataset.h"
#include "math/rng.h"
#include "models/model.h"

namespace kelpie {

/// Options of the Relevance Engine.
struct RelevanceEngineOptions {
  /// Entities drawn per prediction for the sufficient scenario's conversion
  /// set C (paper default: 10).
  size_t conversion_set_size = 10;
  /// Ablation switch: when true, relevances are computed against the
  /// *original* entity's rank instead of a homologous mimic's rank. The
  /// paper (Section 4.2) prefers the homologous baseline because it erases
  /// post-training fluctuations; this flag reproduces that design study.
  bool use_original_rank_baseline = false;
  uint64_t seed = 1234;
};

/// The Relevance Engine (Section 4.2) estimates the effect that adding or
/// removing training facts would have on a prediction, without retraining
/// the whole model. Its primitive is *post-training*: a mimic entity whose
/// single embedding row is trained on a chosen fact set while all other
/// parameters stay frozen.
///
///  - A homologous mimic e' is trained on an exact replica of G^e_train and
///    approximates the behaviour of e.
///  - A non-homologous mimic is trained on a modified replica (facts
///    removed or added) and approximates the behaviour e would have shown
///    had the modification existed from the start.
///
/// Necessary relevance ξ_n (Algorithm 1) is the rank deterioration between
/// the homologous and the removal mimic; sufficient relevance ξ_s
/// (Algorithm 2) is the mean achieved fraction of the ideal rank
/// improvement over the conversion set C.
///
/// Homologous mimics and their ranks are cached: one explanation extraction
/// evaluates many candidates against the same baseline.
class RelevanceEngine {
 public:
  RelevanceEngine(const LinkPredictionModel& model, const Dataset& dataset,
                  RelevanceEngineOptions options);

  /// Algorithm 1: expected rank deterioration when removing `candidate`
  /// from the source entity. Range [0, |E| - 1]; larger = more relevant.
  double NecessaryRelevance(const Triple& prediction, PredictionTarget target,
                            const std::vector<Triple>& candidate);

  /// Algorithm 2: mean ratio of achieved over ideal rank improvement when
  /// adding `candidate` (transferred) to every entity of `conversion_set`.
  /// Typically in [0, 1]; can be negative when the facts hurt.
  double SufficientRelevance(const Triple& prediction,
                             PredictionTarget target,
                             const std::vector<Triple>& candidate,
                             const std::vector<EntityId>& conversion_set);

  /// Draws the conversion set C for a prediction: random entities c whose
  /// prediction <c, r, t> (tail scenario; symmetric for heads) has rank
  /// greater than 1, i.e. the model does not already predict them.
  std::vector<EntityId> SampleConversionSet(const Triple& prediction,
                                            PredictionTarget target);

  /// Filtered rank of the predicted entity when the source entity is
  /// represented by `mimic_vec`. Exposed for tests.
  int RankWithMimic(const Triple& prediction, PredictionTarget target,
                    EntityId source, std::span<const float> mimic_vec) const;

  /// Total post-trainings run so far (the cost unit of the paper's
  /// KernelSHAP comparison).
  size_t post_training_count() const { return post_training_count_; }

  /// Drops the homologous-mimic caches (used between unrelated
  /// predictions to bound memory).
  void ClearCaches();

  const LinkPredictionModel& model() const { return model_; }
  const Dataset& dataset() const { return dataset_; }

 private:
  /// Post-trains a mimic of `entity` on `facts` and counts it.
  std::vector<float> PostTrain(EntityId entity,
                               const std::vector<Triple>& facts);

  /// Cached homologous mimic rank for (entity, prediction). The cache key
  /// only involves the entity and the query (relation + predicted entity +
  /// direction) because the homologous fact set is always G^e_train.
  int HomologousRank(EntityId entity, const Triple& prediction,
                     PredictionTarget target);

  const LinkPredictionModel& model_;
  const Dataset& dataset_;
  RelevanceEngineOptions options_;
  Rng rng_;
  size_t post_training_count_ = 0;
  std::unordered_map<uint64_t, int> homologous_rank_cache_;
};

}  // namespace kelpie

#endif  // KELPIE_CORE_RELEVANCE_ENGINE_H_
