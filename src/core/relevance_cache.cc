#include "core/relevance_cache.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace kelpie {

namespace {

/// File layout (host-endian, single-host cache):
///   magic "KELPRC1\n" | u64 fingerprint | u32 crc32c(magic+fingerprint)
/// followed by zero or more frames, least-recently-used first:
///   u32 payload_len | u32 crc32c(payload) | payload
/// payload = i32 entity | u32 num_facts | u32 dim
///         | num_facts * (i32 head, i32 relation, i32 tail) | dim * f32
constexpr char kMagic[8] = {'K', 'E', 'L', 'P', 'R', 'C', '1', '\n'};
constexpr size_t kHeaderSize = 8 + 8 + 4;
constexpr size_t kFrameOverhead = 8;
constexpr size_t kPayloadFixed = 12;

/// SplitMix64 finalizer (same mixing as the engine's seed derivation).
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename T>
void AppendRaw(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T ReadRaw(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

size_t PayloadSize(size_t num_facts, size_t dim) {
  return kPayloadFixed + num_facts * 12 + dim * 4;
}

bool AllFinite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string SerializeHeader(uint64_t fingerprint) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendRaw(out, fingerprint);
  AppendRaw(out, Crc32c(out.data(), out.size()));
  return out;
}

/// Parses the header; returns false when it does not verify (the caller
/// treats the file as empty).
bool ParseHeader(const std::string& bytes, uint64_t* fingerprint) {
  if (bytes.size() < kHeaderSize) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return false;
  const uint32_t stored = ReadRaw<uint32_t>(bytes.data() + 16);
  if (stored != Crc32c(bytes.data(), 16)) return false;
  *fingerprint = ReadRaw<uint64_t>(bytes.data() + 8);
  return true;
}

struct ParsedEntry {
  EntityId entity = kNoEntity;
  std::vector<Triple> facts;
  std::vector<float> mimic;
};

/// Walks the frames after the header, appending every entry that verifies
/// to `out` and counting what was dropped. The rules are the
/// corruption-recovery state machine of DESIGN.md §13: a frame whose
/// length field runs past the file ends parsing (torn tail); a frame whose
/// payload CRC or structure does not verify is skipped (the length field
/// is still trusted for reframing — a corrupted length surfaces as a CRC
/// failure on the next frame or as a torn tail, both of which degrade
/// cleanly).
void ParseFrames(const std::string& bytes, std::vector<ParsedEntry>* out,
                 uint64_t* corrupt, bool* torn) {
  size_t off = kHeaderSize;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameOverhead) {
      *torn = true;
      return;
    }
    const uint32_t len = ReadRaw<uint32_t>(bytes.data() + off);
    const uint32_t crc = ReadRaw<uint32_t>(bytes.data() + off + 4);
    if (len < kPayloadFixed) {
      // Framing itself is untrustworthy from here on; drop the remainder.
      ++*corrupt;
      return;
    }
    if (bytes.size() - off - kFrameOverhead < len) {
      *torn = true;
      return;
    }
    const char* payload = bytes.data() + off + kFrameOverhead;
    off += kFrameOverhead + len;
    if (Crc32c(payload, len) != crc) {
      ++*corrupt;
      continue;
    }
    ParsedEntry entry;
    entry.entity = ReadRaw<int32_t>(payload);
    const uint32_t num_facts = ReadRaw<uint32_t>(payload + 4);
    const uint32_t dim = ReadRaw<uint32_t>(payload + 8);
    if (PayloadSize(num_facts, dim) != len) {
      ++*corrupt;
      continue;
    }
    entry.facts.reserve(num_facts);
    const char* p = payload + kPayloadFixed;
    for (uint32_t i = 0; i < num_facts; ++i, p += 12) {
      entry.facts.emplace_back(ReadRaw<int32_t>(p), ReadRaw<int32_t>(p + 4),
                               ReadRaw<int32_t>(p + 8));
    }
    entry.mimic.resize(dim);
    std::memcpy(entry.mimic.data(), p, dim * sizeof(float));
    out->push_back(std::move(entry));
  }
}

void AppendFrame(std::string& out, EntityId entity,
                 const std::vector<Triple>& facts,
                 const std::vector<float>& mimic) {
  std::string payload;
  payload.reserve(PayloadSize(facts.size(), mimic.size()));
  AppendRaw(payload, static_cast<int32_t>(entity));
  AppendRaw(payload, static_cast<uint32_t>(facts.size()));
  AppendRaw(payload, static_cast<uint32_t>(mimic.size()));
  for (const Triple& f : facts) {
    AppendRaw(payload, static_cast<int32_t>(f.head));
    AppendRaw(payload, static_cast<int32_t>(f.relation));
    AppendRaw(payload, static_cast<int32_t>(f.tail));
  }
  for (float v : mimic) AppendRaw(payload, v);
  AppendRaw(out, static_cast<uint32_t>(payload.size()));
  AppendRaw(out, Crc32c(payload.data(), payload.size()));
  out += payload;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("cannot read " + path);
  return buffer.str();
}

}  // namespace

RelevanceCache::CacheMetrics RelevanceCache::CacheMetrics::Resolve() {
  metrics::Registry& reg = metrics::Registry::Global();
  constexpr auto kWallClock = metrics::Determinism::kWallClock;
  auto event = [&](const char* name) -> metrics::Counter& {
    return reg.GetCounter(
        "kelpie_relevance_cache_events_total", {{"event", name}}, kWallClock,
        "Persistent relevance-cache events: lookup outcomes (hit, miss, "
        "wait, collision) and evictions (LRU, corrupt entry, fingerprint "
        "invalidation, torn tail).");
  };
  return CacheMetrics{
      .hit = event("hit"),
      .miss = event("miss"),
      .wait = event("wait"),
      .collision = event("collision"),
      .evict_lru = event("evict_lru"),
      .evict_corrupt = event("evict_corrupt"),
      .evict_fingerprint = event("evict_fingerprint"),
      .torn_tail = event("torn_tail"),
      .entries = reg.GetGauge("kelpie_relevance_cache_entries", {}, kWallClock,
                              "Ready entries held by the relevance cache."),
      .bytes = reg.GetGauge("kelpie_relevance_cache_bytes", {}, kWallClock,
                            "Estimated bytes held by the relevance cache."),
  };
}

RelevanceCache::RelevanceCache(RelevanceCacheOptions options)
    : options_(std::move(options)), metrics_(CacheMetrics::Resolve()) {}

std::shared_ptr<RelevanceCache> RelevanceCache::Open(
    RelevanceCacheOptions options) {
  std::shared_ptr<RelevanceCache> cache(
      new RelevanceCache(std::move(options)));
  cache->LoadFromDisk();
  return cache;
}

size_t RelevanceCache::EntryBytes(size_t num_facts, size_t dim) {
  // The on-disk frame size plus a fixed estimate of the in-memory index
  // overhead; exactness does not matter, only a consistent bound.
  return kFrameOverhead + PayloadSize(num_facts, dim) + 64;
}

uint64_t RelevanceCache::KeyHash(EntityId entity,
                                 const std::vector<Triple>& facts) {
  // Same chain shape as the engine's PostTrainSeed but a different salt:
  // cache keys and RNG streams must be independent functions of the input.
  uint64_t h = Mix64(0x5ca1ab1ecafef00dULL);
  h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(entity)));
  h = Mix64(h ^ static_cast<uint64_t>(facts.size()));
  for (const Triple& f : facts) {
    h = Mix64(h ^ f.Key());
  }
  return h;
}

void RelevanceCache::LoadFromDisk() {
  if (options_.path.empty()) return;
  Result<std::string> bytes = ReadWholeFile(options_.path);
  if (!bytes.ok()) return;  // missing file = valid empty cache
  if (bytes->empty()) return;
  uint64_t stored_fingerprint = 0;
  if (!ParseHeader(*bytes, &stored_fingerprint)) {
    // Unrecognizable header: not this format (or torn inside the header).
    // Start empty; the next Flush rewrites it wholesale.
    evict_corrupt_.fetch_add(1, std::memory_order_relaxed);
    metrics_.evict_corrupt.Increment();
    return;
  }
  if (stored_fingerprint != options_.fingerprint ||
      failpoint::Fire("cache.stale_fingerprint")) {
    // The model (or engine seed) changed since this file was written; its
    // mimics would be wrong for the current parameters. Invalidate all.
    evict_fingerprint_.fetch_add(1, std::memory_order_relaxed);
    metrics_.evict_fingerprint.Increment();
    return;
  }
  std::vector<ParsedEntry> entries;
  uint64_t corrupt = 0;
  bool torn = false;
  ParseFrames(*bytes, &entries, &corrupt, &torn);
  if (corrupt > 0) {
    evict_corrupt_.fetch_add(corrupt, std::memory_order_relaxed);
    metrics_.evict_corrupt.Increment(corrupt);
  }
  if (torn) {
    torn_tail_.fetch_add(1, std::memory_order_relaxed);
    metrics_.torn_tail.Increment();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (ParsedEntry& entry : entries) {
    InsertReadyLocked(entry.entity, std::move(entry.facts),
                      std::move(entry.mimic));
  }
  UpdateGaugesLocked();
}

void RelevanceCache::InsertReadyLocked(EntityId entity,
                                       std::vector<Triple> facts,
                                       std::vector<float> mimic) {
  const uint64_t key = KeyHash(entity, facts);
  std::shared_ptr<Entry>& slot = index_[key];
  if (slot) return;  // duplicate frame; first wins
  slot = std::make_shared<Entry>();
  slot->entity = entity;
  slot->facts = std::move(facts);
  slot->bytes = EntryBytes(slot->facts.size(), mimic.size());
  slot->mimic = std::move(mimic);
  slot->ready = true;
  slot->done.store(true, std::memory_order_release);
  slot->lru_pos = lru_.insert(lru_.end(), key);
  slot->in_lru = true;
  bytes_ += slot->bytes;
  ++ready_entries_;
  while (options_.max_bytes > 0 && bytes_ > options_.max_bytes &&
         lru_.size() > 1) {
    const uint64_t victim_key = lru_.front();
    auto it = index_.find(victim_key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      --ready_entries_;
      index_.erase(it);
    }
    lru_.pop_front();
    evict_lru_.fetch_add(1, std::memory_order_relaxed);
    metrics_.evict_lru.Increment();
  }
}

std::vector<float> RelevanceCache::GetOrCompute(
    EntityId entity, const std::vector<Triple>& facts,
    const ComputeFn& compute) {
  const uint64_t key = KeyHash(entity, facts);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = index_[key];
    if (!slot) {
      slot = std::make_shared<Entry>();
      slot->entity = entity;
      slot->facts = facts;
    }
    entry = slot;
    if (entry->in_lru) {
      lru_.splice(lru_.end(), lru_, entry->lru_pos);
    }
  }
  if (entry->entity != entity || entry->facts != facts) {
    // 64-bit key collision. Exact verification keeps the contract absolute:
    // the colliding request recomputes uncached rather than ever receiving
    // another key's mimic.
    collisions_.fetch_add(1, std::memory_order_relaxed);
    metrics_.collision.Increment();
    return compute();
  }
  const bool published = entry->done.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(entry->mu);
  if (entry->ready) {
    if (published) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      metrics_.hit.Increment();
    } else {
      waits_.fetch_add(1, std::memory_order_relaxed);
      metrics_.wait.Increment();
    }
    return entry->mimic;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics_.miss.Increment();
  std::vector<float> mimic = compute();
  // Diverged (non-finite) mimics are returned but never stored: a
  // failpoint-poisoned post-training must not outlive its request, and a
  // genuinely diverged one recomputes identically anyway (same seed).
  if (!mimic.empty() && AllFinite(mimic)) {
    entry->mimic = mimic;
    entry->bytes = EntryBytes(entry->facts.size(), mimic.size());
    entry->ready = true;
    entry->done.store(true, std::memory_order_release);
    lock.unlock();
    AccountAndEvict(entry, key);
  }
  return mimic;
}

void RelevanceCache::AccountAndEvict(const std::shared_ptr<Entry>& entry,
                                     uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  // A concurrent Purge may have dropped the slot; the computed vector was
  // already returned to the caller, so nothing to account.
  if (it == index_.end() || it->second != entry) return;
  if (!entry->in_lru) {
    entry->lru_pos = lru_.insert(lru_.end(), key);
    entry->in_lru = true;
    bytes_ += entry->bytes;
    ++ready_entries_;
  }
  while (options_.max_bytes > 0 && bytes_ > options_.max_bytes &&
         lru_.size() > 1) {
    const uint64_t victim_key = lru_.front();
    if (victim_key == key) break;  // never evict the entry just inserted
    auto victim = index_.find(victim_key);
    if (victim != index_.end()) {
      bytes_ -= victim->second->bytes;
      --ready_entries_;
      index_.erase(victim);
    }
    lru_.pop_front();
    evict_lru_.fetch_add(1, std::memory_order_relaxed);
    metrics_.evict_lru.Increment();
  }
  UpdateGaugesLocked();
}

void RelevanceCache::UpdateGaugesLocked() {
  metrics_.entries.Set(static_cast<double>(ready_entries_));
  metrics_.bytes.Set(static_cast<double>(bytes_));
}

Status RelevanceCache::Flush() {
  if (options_.path.empty()) return Status::Ok();
  uint64_t fingerprint = options_.fingerprint;
  if (failpoint::Fire("cache.stale_fingerprint")) {
    // Simulate a file written by a different model: the header verifies,
    // the fingerprint does not match the next Open.
    fingerprint ^= 1;
  }
  std::string image = SerializeHeader(fingerprint);
  size_t last_frame_off = 0;
  size_t last_payload_len = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t key : lru_) {
      auto it = index_.find(key);
      if (it == index_.end() || !it->second->ready) continue;
      const Entry& entry = *it->second;
      last_frame_off = image.size();
      last_payload_len = PayloadSize(entry.facts.size(), entry.mimic.size());
      AppendFrame(image, entry.entity, entry.facts, entry.mimic);
    }
  }
  if (last_payload_len > 0 && failpoint::Fire("cache.bit_flip")) {
    // One payload bit of the last (hottest) entry flips; its CRC stops
    // verifying and the next Open evicts exactly that entry.
    image[last_frame_off + kFrameOverhead + last_payload_len / 2] ^= 0x10;
  }
  if (failpoint::Fire("cache.partial_write")) {
    // The image ends mid-entry, as if the writer died after the frame
    // header went out: the next Open truncates the torn tail.
    const size_t cut = last_payload_len > 0
                           ? last_frame_off + kFrameOverhead +
                                 last_payload_len / 2
                           : image.size() / 2;
    image.resize(cut);
  }
  return WriteFileAtomic(options_.path, image);
}

Status RelevanceCache::Purge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    lru_.clear();
    bytes_ = 0;
    ready_entries_ = 0;
    UpdateGaugesLocked();
  }
  if (options_.path.empty()) return Status::Ok();
  return WriteFileAtomic(options_.path, SerializeHeader(options_.fingerprint));
}

size_t RelevanceCache::PurgeEntities(const std::vector<EntityId>& entities) {
  std::unordered_set<EntityId> affected(entities.begin(), entities.end());
  if (affected.empty()) return 0;
  size_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = index_.begin(); it != index_.end();) {
    const std::shared_ptr<Entry>& entry = it->second;
    // In-flight slots (another thread mid-compute) are skipped: their
    // result is accounted later by AccountAndEvict against the then-current
    // index, and callers purge before serving against updated parameters.
    if (!entry->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    bool hit = affected.count(entry->entity) > 0;
    if (!hit) {
      for (const Triple& fact : entry->facts) {
        if (affected.count(fact.head) > 0 || affected.count(fact.tail) > 0) {
          hit = true;
          break;
        }
      }
    }
    if (!hit) {
      ++it;
      continue;
    }
    if (entry->in_lru) {
      lru_.erase(entry->lru_pos);
      entry->in_lru = false;
      bytes_ -= entry->bytes;
      --ready_entries_;
    }
    it = index_.erase(it);
    ++dropped;
  }
  UpdateGaugesLocked();
  return dropped;
}

RelevanceCacheStats RelevanceCache::stats() const {
  RelevanceCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.waits = waits_.load(std::memory_order_relaxed);
  out.collisions = collisions_.load(std::memory_order_relaxed);
  out.evict_lru = evict_lru_.load(std::memory_order_relaxed);
  out.evict_corrupt = evict_corrupt_.load(std::memory_order_relaxed);
  out.evict_fingerprint = evict_fingerprint_.load(std::memory_order_relaxed);
  out.torn_tail = torn_tail_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = ready_entries_;
  out.bytes = bytes_;
  return out;
}

Result<RelevanceCacheFileInfo> RelevanceCache::Inspect(
    const std::string& path) {
  KELPIE_ASSIGN_OR_RETURN(const std::string bytes, ReadWholeFile(path));
  RelevanceCacheFileInfo info;
  info.file_bytes = bytes.size();
  if (!ParseHeader(bytes, &info.fingerprint)) {
    return info;  // header_ok stays false: loads as empty
  }
  info.header_ok = true;
  std::vector<ParsedEntry> entries;
  ParseFrames(bytes, &entries, &info.corrupt_entries, &info.torn_tail);
  info.entries = entries.size();
  for (const ParsedEntry& entry : entries) {
    info.payload_bytes += PayloadSize(entry.facts.size(), entry.mimic.size());
  }
  return info;
}

uint64_t ComputeModelFingerprint(const LinkPredictionModel& model,
                                 uint64_t engine_seed) {
  std::ostringstream params;
  const Status saved = model.SaveParameters(params);
  const std::string blob = params.str();
  auto mix_f = [](uint64_t h, float v) {
    return Mix64(h ^ std::bit_cast<uint32_t>(v));
  };
  uint64_t h = Mix64(0xf1c6e12b00c5a11eULL);
  for (char c : std::string(model.Name())) {
    h = Mix64(h ^ static_cast<uint8_t>(c));
  }
  h = Mix64(h ^ model.num_entities());
  h = Mix64(h ^ model.num_relations());
  h = Mix64(h ^ model.entity_dim());
  const TrainConfig& cfg = model.config();
  h = Mix64(h ^ cfg.dim);
  h = Mix64(h ^ cfg.post_training_epochs);
  h = mix_f(h, cfg.post_training_lr);
  h = mix_f(h, cfg.learning_rate);
  h = mix_f(h, cfg.regularization);
  h = mix_f(h, cfg.margin);
  h = Mix64(h ^ static_cast<uint64_t>(
                    static_cast<uint32_t>(cfg.negatives_per_positive)));
  h = mix_f(h, cfg.conv_lr);
  h = mix_f(h, cfg.label_smoothing);
  h = mix_f(h, cfg.input_dropout);
  h = mix_f(h, cfg.feature_dropout);
  h = mix_f(h, cfg.hidden_dropout);
  h = Mix64(h ^ (saved.ok() ? Crc32c(blob) : 0xdeadULL));
  h = Mix64(h ^ blob.size());
  h = Mix64(h ^ engine_seed);
  return h;
}

}  // namespace kelpie
