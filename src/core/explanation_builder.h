#ifndef KELPIE_CORE_EXPLANATION_BUILDER_H_
#define KELPIE_CORE_EXPLANATION_BUILDER_H_

#include <functional>
#include <vector>

#include "common/budget.h"
#include "core/explanation.h"
#include "core/prefilter.h"
#include "core/relevance_engine.h"

namespace kelpie {

/// Options of the Explanation Builder (Section 4.3).
struct ExplanationBuilderOptions {
  /// i_max: the largest combination size explored (paper default: 4).
  size_t max_explanation_length = 4;
  /// ξ_n0: necessary acceptance threshold — expected rank worsening (paper
  /// default: 5).
  double necessary_threshold = 5.0;
  /// ξ_s0: sufficient acceptance threshold — expected fraction of the ideal
  /// rank improvement (paper default: 0.9).
  double sufficient_threshold = 0.9;
  /// Restrict to single-fact explanations (the paper's K1 baseline).
  bool k1_only = false;
  /// Footnote 2: ρ_i uses the average relevance of the last `rho_window`
  /// visited candidates for robustness to outliers.
  size_t rho_window = 10;
  /// Wall-clock guard: hard cap on true-relevance evaluations per size
  /// (generous; the stochastic policy almost always stops earlier).
  size_t max_visits_per_size = 150;
  /// Disables the stochastic early termination (every candidate up to
  /// max_visits_per_size is evaluated). Used by analysis benches such as
  /// the Figure 4 correlation study; never needed in production use.
  bool exhaustive = false;
  /// Seed of the probabilistic early-termination draws.
  uint64_t seed = 99;
};

/// Observes every candidate the builder submits to the Relevance Engine;
/// arguments are (combination size, preliminary relevance, true relevance).
/// Used to reproduce Figure 4.
using CandidateObserver =
    std::function<void(size_t, double, double)>;

/// The Explanation Builder searches the space of candidate explanations —
/// combinations of the Pre-Filtered facts — for the smallest combination
/// whose relevance passes the acceptance threshold (Algorithm 3).
///
/// Search order within each size class S_i follows *preliminary relevance*
/// (the mean of the member facts' individual relevances), and a
/// simulated-annealing-inspired stochastic policy abandons S_i when the
/// stream of true relevances decays relative to the best seen
/// (P(stop) = 1 - ρ_i).
///
/// Parallel extraction (RelevanceEngineOptions::num_threads > 1) uses the
/// engine's shared pool with *chunked visiting* semantics: the S_1 sweep is
/// evaluated fully in parallel (the sequential algorithm consults no
/// stopping rule inside it), and each S_i visit loop evaluates candidates
/// speculatively in deterministic chunks of num_threads, then replays the
/// sequential stopping policy (threshold exit, ρ_i draw) over the chunk in
/// preliminary order. Because every post-training is seeded from (engine
/// seed, entity, fact set) alone, the returned Explanation — facts,
/// relevance, accepted, visited_candidates — and the observer stream are
/// bitwise identical for any num_threads; only post_trainings and seconds
/// can differ (a mid-chunk stop discards already-evaluated speculative
/// candidates).
///
/// Bounded extraction: an `ExtractionControl` caps the search. The work
/// budget is charged at a fixed per-candidate cost (1 work unit = one
/// non-homologous post-training, so a sufficient candidate costs its
/// conversion-set size) inside the deterministic sequential replay, and
/// candidate allocations are pre-capped by the affordable remainder before
/// any parallel dispatch — a budget-truncated run therefore returns the
/// same bitwise-identical explanation at every thread count. Deadline and
/// cancellation are wall-clock overlays checked at candidate boundaries;
/// they stop the search at a schedule-dependent point and are *not*
/// reproducible. Either way the best explanation found so far is returned,
/// annotated with its Completeness and visited/skipped/divergent counts.
class ExplanationBuilder {
 public:
  ExplanationBuilder(RelevanceEngine& engine, const PreFilter& prefilter,
                     ExplanationBuilderOptions options)
      : engine_(engine), prefilter_(prefilter), options_(options) {}

  /// Extracts a necessary explanation for `prediction`.
  Explanation BuildNecessary(const Triple& prediction,
                             PredictionTarget target,
                             const CandidateObserver& observer = nullptr,
                             const ExtractionControl& control = {});

  /// Extracts a sufficient explanation for `prediction` against the given
  /// conversion set.
  Explanation BuildSufficient(const Triple& prediction,
                              PredictionTarget target,
                              const std::vector<EntityId>& conversion_set,
                              const CandidateObserver& observer = nullptr,
                              const ExtractionControl& control = {});

 private:
  using RelevanceFn = std::function<double(const std::vector<Triple>&)>;

  Explanation Search(ExplanationKind kind, const Triple& prediction,
                     PredictionTarget target, double threshold,
                     const RelevanceFn& relevance,
                     const CandidateObserver& observer,
                     const ExtractionControl& control, uint64_t unit_cost);

  RelevanceEngine& engine_;
  const PreFilter& prefilter_;
  ExplanationBuilderOptions options_;
};

/// Enumerates all size-`k` index combinations of {0, ..., n-1} in
/// lexicographic order. Exposed for tests and for the SHAP-comparison
/// bench.
std::vector<std::vector<size_t>> IndexCombinations(size_t n, size_t k);

}  // namespace kelpie

#endif  // KELPIE_CORE_EXPLANATION_BUILDER_H_
