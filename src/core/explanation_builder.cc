#include "core/explanation_builder.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace kelpie {

namespace {

/// Per-size-class candidate accounting, accumulated locally during the
/// search and committed to the registry once at the end of the extraction.
/// The tallies are derived from the deterministic sequential replay (the
/// same bookkeeping that feeds Explanation::visited/skipped/divergent), so
/// the committed counters are metrics::Determinism::kDeterministic:
/// identical at every thread count for reproducible runs (budget-truncated
/// included; deadline/cancel truncation is schedule-dependent by contract).
struct StageTally {
  uint64_t visited = 0;
  uint64_t skipped = 0;
  uint64_t divergent = 0;
};

/// Commits one extraction's tallies to the process registry. Cold path: a
/// handful of locked lookups per extraction, nothing per candidate.
void CommitSearchMetrics(ExplanationKind kind, uint64_t unit,
                         const std::map<size_t, StageTally>& stages,
                         const Explanation& result) {
  metrics::Registry& reg = metrics::Registry::Global();
  constexpr auto kDet = metrics::Determinism::kDeterministic;
  const std::string kind_name = ExplanationKindName(kind);
  const char* candidates_help =
      "Candidate combinations by kind, size class (stage) and outcome, "
      "counted in the deterministic sequential replay.";
  for (const auto& [stage, tally] : stages) {
    const std::string stage_name = std::to_string(stage);
    if (tally.visited > 0) {
      reg.GetCounter("kelpie_builder_candidates_total",
                     {{"kind", kind_name},
                      {"stage", stage_name},
                      {"outcome", "visited"}},
                     kDet, candidates_help)
          .Increment(tally.visited);
    }
    if (tally.skipped > 0) {
      reg.GetCounter("kelpie_builder_candidates_total",
                     {{"kind", kind_name},
                      {"stage", stage_name},
                      {"outcome", "skipped"}},
                     kDet, candidates_help)
          .Increment(tally.skipped);
    }
    if (tally.divergent > 0) {
      reg.GetCounter("kelpie_builder_candidates_total",
                     {{"kind", kind_name},
                      {"stage", stage_name},
                      {"outcome", "divergent"}},
                     kDet, candidates_help)
          .Increment(tally.divergent);
    }
  }
  reg.GetCounter(
         "kelpie_builder_extractions_total",
         {{"kind", kind_name},
          {"completeness", std::string(CompletenessName(result.completeness))}},
         kDet, "Finished extractions by kind and completeness.")
      .Increment();
  reg.GetCounter(
         "kelpie_builder_committed_work_units_total", {{"kind", kind_name}},
         kDet,
         "Work units charged in the deterministic replay (unit cost x "
         "visited candidates; 1 unit = one non-homologous post-training).")
      .Increment(unit * static_cast<uint64_t>(result.visited_candidates));
  reg.GetHistogram("kelpie_builder_extraction_seconds",
                   metrics::ExponentialBuckets(0.001, 4.0, 12),
                   {{"kind", kind_name}}, metrics::Determinism::kWallClock,
                   "Wall-clock extraction time per explanation.")
      .Observe(result.seconds);
}

/// A candidate combination with its preliminary relevance.
struct ScoredCombo {
  double preliminary;
  std::vector<size_t> indices;
};

/// Enumerates all k-combinations of {0..n-1} *lazily* and returns the
/// `limit` best by preliminary relevance (mean of `individual` over the
/// members), in descending order with deterministic lexicographic
/// tie-breaking. Avoids materializing the full combination space, which is
/// binomial in n — the exact blowup the Pre-Filter exists to prevent, and
/// which this builder must survive when the Pre-Filter is ablated
/// (Figure 6).
std::vector<ScoredCombo> TopCombinationsByPreliminary(
    size_t n, size_t k, const std::vector<double>& individual,
    size_t limit) {
  std::vector<ScoredCombo> heap;  // min-heap on (preliminary, -lex order)
  auto worse = [](const ScoredCombo& a, const ScoredCombo& b) {
    if (a.preliminary != b.preliminary) {
      return a.preliminary > b.preliminary;  // min-heap: smallest on top
    }
    return a.indices < b.indices;  // among ties, lexicographically later
                                   // combos are evicted first
  };
  std::vector<size_t> current(k);
  std::iota(current.begin(), current.end(), 0);
  if (k == 0 || k > n || limit == 0) return {};
  double sum = 0.0;
  for (size_t idx : current) sum += individual[idx];
  while (true) {
    double preliminary = sum / static_cast<double>(k);
    if (heap.size() < limit) {
      heap.push_back({preliminary, current});
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (preliminary > heap.front().preliminary) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = {preliminary, current};
      std::push_heap(heap.begin(), heap.end(), worse);
    }
    // Advance to the next lexicographic combination, maintaining `sum`.
    size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (current[i] != i + n - k) {
        sum -= individual[current[i]];
        ++current[i];
        sum += individual[current[i]];
        for (size_t j = i + 1; j < k; ++j) {
          sum -= individual[current[j]];
          current[j] = current[j - 1] + 1;
          sum += individual[current[j]];
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  std::sort(heap.begin(), heap.end(),
            [](const ScoredCombo& a, const ScoredCombo& b) {
              if (a.preliminary != b.preliminary) {
                return a.preliminary > b.preliminary;
              }
              return a.indices < b.indices;
            });
  return heap;
}

}  // namespace

std::vector<std::vector<size_t>> IndexCombinations(size_t n, size_t k) {
  std::vector<std::vector<size_t>> out;
  if (k == 0 || k > n) return out;
  std::vector<size_t> current(k);
  std::iota(current.begin(), current.end(), 0);
  while (true) {
    out.push_back(current);
    // Advance to the next lexicographic combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (current[i] != i + n - k) {
        ++current[i];
        for (size_t j = i + 1; j < k; ++j) {
          current[j] = current[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return out;
    }
  }
}

Explanation ExplanationBuilder::BuildNecessary(
    const Triple& prediction, PredictionTarget target,
    const CandidateObserver& observer, const ExtractionControl& control) {
  auto relevance = [&](const std::vector<Triple>& candidate) {
    return engine_.NecessaryRelevance(prediction, target, candidate);
  };
  // One necessary candidate costs one non-homologous post-training.
  return Search(ExplanationKind::kNecessary, prediction, target,
                options_.necessary_threshold, relevance, observer, control,
                /*unit_cost=*/1);
}

Explanation ExplanationBuilder::BuildSufficient(
    const Triple& prediction, PredictionTarget target,
    const std::vector<EntityId>& conversion_set,
    const CandidateObserver& observer, const ExtractionControl& control) {
  auto relevance = [&](const std::vector<Triple>& candidate) {
    return engine_.SufficientRelevance(prediction, target, candidate,
                                       conversion_set);
  };
  // One sufficient candidate post-trains a mimic per conversion entity.
  const uint64_t unit_cost =
      std::max<uint64_t>(1, static_cast<uint64_t>(conversion_set.size()));
  return Search(ExplanationKind::kSufficient, prediction, target,
                options_.sufficient_threshold, relevance, observer, control,
                unit_cost);
}

Explanation ExplanationBuilder::Search(ExplanationKind kind,
                                       const Triple& prediction,
                                       PredictionTarget target,
                                       double threshold,
                                       const RelevanceFn& relevance,
                                       const CandidateObserver& observer,
                                       const ExtractionControl& control,
                                       uint64_t unit_cost) {
  Stopwatch timer;
  const size_t start_post_trainings = engine_.post_training_count();
  Rng rng(options_.seed ^ TripleHash()(prediction));

  Explanation result;
  result.kind = kind;

  const uint64_t unit = std::max<uint64_t>(1, unit_cost);
  std::map<size_t, StageTally> stage_tallies;
  auto interrupt = [&control] { return control.CheckInterrupt(); };
  auto finish = [&](std::vector<Triple> facts_out, double rel, bool accepted,
                    size_t visited_count) {
    result.facts = std::move(facts_out);
    result.relevance = rel;
    result.accepted = accepted;
    result.visited_candidates = visited_count;
    result.post_trainings =
        engine_.post_training_count() - start_post_trainings;
    result.seconds = timer.ElapsedSeconds();
    CommitSearchMetrics(kind, unit, stage_tallies, result);
    return result;
  };

  const std::vector<Triple> facts =
      prefilter_.MostPromisingFacts(prediction, target);
  if (facts.empty()) {
    return finish({}, 0.0, false, 0);
  }

  // ---- S_1: individual relevances (Algorithm 3, lines 1-3). ----
  // The sequential algorithm evaluates every single-fact candidate before
  // consulting the threshold, so S_1 parallelizes without any speculation:
  // compute all relevances across the pool, then fold sequentially in fact
  // order (observer calls, best tracking).
  ThreadPool* pool = engine_.pool();

  // Budget pre-cap, computed before any dispatch and therefore identical at
  // every thread count: evaluate only the affordable prefix of the sweep.
  // An incomplete sweep is a truncation even if its best is accepted — the
  // untruncated algorithm would have seen every single-fact candidate.
  size_t planned = facts.size();
  {
    const uint64_t affordable = control.BudgetRemaining() / unit;
    if (affordable < planned) {
      planned = static_cast<size_t>(affordable);
      result.completeness = Completeness::kTruncatedBudget;
    }
  }
  result.skipped_candidates += facts.size() - planned;
  stage_tallies[1].skipped += facts.size() - planned;

  std::vector<double> individual;
  Status interrupt_status;
  if (pool != nullptr && planned > 1) {
    ParallelOutcome outcome;
    individual = CancellableParallelMap(
        *pool, planned, [&](size_t i) { return relevance({facts[i]}); },
        interrupt, &outcome);
    interrupt_status = outcome.status;
  } else {
    individual.reserve(planned);
    for (size_t i = 0; i < planned; ++i) {
      interrupt_status = control.CheckInterrupt();
      if (!interrupt_status.ok()) break;
      individual.push_back(relevance({facts[i]}));
    }
  }
  result.skipped_candidates += planned - individual.size();
  stage_tallies[1].skipped += planned - individual.size();

  size_t visited = 0;
  double best_relevance = 0.0;
  std::vector<Triple> best_facts;
  bool have_best = false;
  for (size_t i = 0; i < individual.size(); ++i) {
    // Charged in the deterministic fold. The pre-cap sized the sweep so the
    // charge cannot fail for a per-extraction budget; a budget shared with
    // concurrent extractions may still run dry, which truncates here.
    if (!control.TryCharge(unit)) {
      result.completeness = Completeness::kTruncatedBudget;
      result.skipped_candidates += individual.size() - i;
      stage_tallies[1].skipped += individual.size() - i;
      individual.resize(i);
      break;
    }
    const double r = individual[i];
    ++visited;
    ++stage_tallies[1].visited;
    if (std::isnan(r)) {
      // Diverged post-training: visited and charged, but excluded from the
      // observer stream and from best-so-far tracking.
      ++result.divergent_candidates;
      ++stage_tallies[1].divergent;
      continue;
    }
    if (observer) observer(1, r, r);
    if (!have_best || r > best_relevance) {
      best_relevance = r;
      best_facts = {facts[i]};
      have_best = true;
    }
  }
  if (have_best && best_relevance >= threshold) {
    return finish(std::move(best_facts), best_relevance, true, visited);
  }
  if (options_.k1_only) {
    return finish(std::move(best_facts), best_relevance, false, visited);
  }
  if (!interrupt_status.ok()) {
    result.completeness = CompletenessFromStatus(interrupt_status);
    return finish(std::move(best_facts), best_relevance, false, visited);
  }
  if (individual.size() < facts.size()) {
    // Budget-truncated sweep: the S_i ranking needs every individual
    // relevance, and the remainder cannot afford a single candidate anyway.
    return finish(std::move(best_facts), best_relevance, false, visited);
  }

  // Divergent single-fact candidates get the worst possible preliminary
  // score: a NaN basis would poison the S_i ranking comparators.
  std::vector<double> preliminary_basis = individual;
  for (double& v : preliminary_basis) {
    if (std::isnan(v)) v = -std::numeric_limits<double>::infinity();
  }

  // ---- S_i for i >= 2 (Algorithm 3, lines 4-21). ----
  const size_t i_max =
      std::min(options_.max_explanation_length, facts.size());
  for (size_t size = 2; size <= i_max; ++size) {
    // Preliminary relevance ranking (lines 7-9): the best
    // max_visits_per_size combinations by mean individual relevance,
    // selected lazily (the visit loop can never consume more than that).
    std::vector<ScoredCombo> combos = TopCombinationsByPreliminary(
        facts.size(), size, preliminary_basis, options_.max_visits_per_size);

    // Visit in descending preliminary relevance (lines 10-21).
    //
    // The threshold early-exit and the stochastic ρ_i stop make the visit
    // loop inherently sequential, so parallelism is speculative: candidates
    // are evaluated in deterministic chunks of num_threads, then the
    // sequential stopping policy is *replayed* over the chunk's relevances
    // in preliminary order. A stop discards the rest of the chunk. The
    // visible outcome (facts, relevance, accepted, visited_candidates,
    // observer stream, rng draws) is therefore bitwise identical for every
    // num_threads, including 1; only post_trainings and seconds may grow
    // with the speculatively evaluated remainder of the stopping chunk.
    //
    // Budget truncation inherits the same guarantee: each chunk allocation
    // is pre-capped by the affordable remainder, and charges happen in the
    // replay, so a budgeted run truncates at the same candidate everywhere.
    const size_t chunk_size = std::max<size_t>(1, engine_.num_threads());
    double best_in_size = 0.0;
    bool have_best_in_size = false;
    std::deque<double> recent;
    size_t visits_in_size = 0;
    bool stop_size = false;
    size_t begin = 0;
    while (begin < combos.size() && !stop_size) {
      size_t take = std::min(chunk_size, combos.size() - begin);
      const uint64_t affordable = control.BudgetRemaining() / unit;
      if (affordable < take) {
        take = static_cast<size_t>(affordable);
        if (take == 0) {
          result.completeness = Completeness::kTruncatedBudget;
          result.skipped_candidates += combos.size() - begin;
          stage_tallies[size].skipped += combos.size() - begin;
          return finish(std::move(best_facts), best_relevance, false,
                        visited);
        }
      }
      std::vector<std::vector<Triple>> candidates(take);
      for (size_t k = 0; k < take; ++k) {
        candidates[k].reserve(size);
        for (size_t idx : combos[begin + k].indices) {
          candidates[k].push_back(facts[idx]);
        }
      }
      std::vector<double> relevances;
      if (pool != nullptr && take > 1) {
        ParallelOutcome outcome;
        relevances = CancellableParallelMap(
            *pool, take, [&](size_t k) { return relevance(candidates[k]); },
            interrupt, &outcome);
        interrupt_status = outcome.status;
      } else {
        relevances.reserve(take);
        for (size_t k = 0; k < take; ++k) {
          interrupt_status = control.CheckInterrupt();
          if (!interrupt_status.ok()) break;
          relevances.push_back(relevance(candidates[k]));
        }
      }

      // Sequential replay of the stopping policy over the evaluated chunk.
      for (size_t k = 0; k < relevances.size(); ++k) {
        if (visits_in_size >= options_.max_visits_per_size) {
          stop_size = true;
          break;
        }
        if (!control.TryCharge(unit)) {
          result.completeness = Completeness::kTruncatedBudget;
          result.skipped_candidates += combos.size() - (begin + k);
          stage_tallies[size].skipped += combos.size() - (begin + k);
          return finish(std::move(best_facts), best_relevance, false,
                        visited);
        }
        const ScoredCombo& combo = combos[begin + k];
        const double cur = relevances[k];
        ++visited;
        ++visits_in_size;
        ++stage_tallies[size].visited;
        if (std::isnan(cur)) {
          ++result.divergent_candidates;
          ++stage_tallies[size].divergent;
          continue;
        }
        if (observer) observer(size, combo.preliminary, cur);
        recent.push_back(cur);
        if (recent.size() > options_.rho_window) recent.pop_front();

        if (cur >= threshold) {
          // Acceptance during the replay is kComplete: the accepted prefix
          // is exactly what the untruncated sequential run would have seen.
          return finish(candidates[k], cur, true, visited);
        }
        if (cur > best_relevance) {
          best_relevance = cur;
          best_facts = candidates[k];
        }
        if (!have_best_in_size || cur > best_in_size) {
          best_in_size = cur;
          have_best_in_size = true;
        } else if (!options_.exhaustive) {
          // ρ_i: smoothed current relevance over the best in S_i
          // (footnote 2), clamped to [0, 1]; stop S_i with prob 1 - ρ_i.
          double smoothed =
              std::accumulate(recent.begin(), recent.end(), 0.0) /
              static_cast<double>(recent.size());
          double rho = best_in_size > 0.0 ? smoothed / best_in_size : 1.0;
          rho = std::clamp(rho, 0.0, 1.0);
          if (rng.UniformDouble() > rho) {
            stop_size = true;
            break;
          }
        }
      }
      if (!interrupt_status.ok()) {
        result.completeness = CompletenessFromStatus(interrupt_status);
        result.skipped_candidates +=
            combos.size() - (begin + relevances.size());
        stage_tallies[size].skipped +=
            combos.size() - (begin + relevances.size());
        return finish(std::move(best_facts), best_relevance, false, visited);
      }
      begin += take;
    }
  }

  // Best-effort (Section 4.3): no candidate met the threshold.
  return finish(std::move(best_facts), best_relevance, false, visited);
}

}  // namespace kelpie
