#ifndef KELPIE_CORE_EXPLANATION_H_
#define KELPIE_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "kgraph/dataset.h"
#include "kgraph/triple.h"

namespace kelpie {

/// The scenario of an explanation (Section 2.2 of the paper).
enum class ExplanationKind {
  /// Smallest set of source-entity training facts whose *removal* changes
  /// the top-ranked answer.
  kNecessary,
  /// Smallest set of source-entity training facts whose *addition* to other
  /// entities converts their prediction to the same answer.
  kSufficient,
};

/// Lower-case scenario name ("necessary" / "sufficient"), used for metric
/// labels and log lines.
inline const char* ExplanationKindName(ExplanationKind kind) {
  return kind == ExplanationKind::kNecessary ? "necessary" : "sufficient";
}

/// An extracted explanation X*: the facts, the relevance the Relevance
/// Engine assigned to it, and extraction metadata.
struct Explanation {
  ExplanationKind kind = ExplanationKind::kNecessary;
  /// The facts of X*, all featuring the prediction's source entity.
  std::vector<Triple> facts;
  /// ξ of the returned combination (rank worsening for necessary; mean rank
  /// improvement ratio for sufficient).
  double relevance = 0.0;
  /// True if the acceptance criterion was met; false for best-effort
  /// returns after an exhausted search.
  bool accepted = false;
  /// Number of post-trainings spent (the search-cost unit the paper uses to
  /// compare against KernelSHAP).
  size_t post_trainings = 0;
  /// Number of candidate combinations whose true relevance was computed.
  size_t visited_candidates = 0;
  /// How far the search got. Anything but kComplete means `facts` is the
  /// best explanation found before the work budget, the deadline, or a
  /// cancellation stopped the search — valid, but possibly weaker than what
  /// an unbounded run would return. Budget truncation is deterministic;
  /// deadline/cancel truncation is not.
  Completeness completeness = Completeness::kComplete;
  /// Planned candidates the search never visited because it stopped early:
  /// the unevaluated remainder of the S_1 sweep or of the current size
  /// class's candidate list (later size classes are not enumerated).
  size_t skipped_candidates = 0;
  /// Candidates whose post-training diverged (non-finite mimic). They are
  /// visited and charged but excluded from acceptance, best-so-far and the
  /// stopping statistics — divergence degrades to skip-and-record instead
  /// of aborting the extraction.
  size_t divergent_candidates = 0;
  /// Wall-clock extraction time.
  double seconds = 0.0;

  size_t size() const { return facts.size(); }
  bool empty() const { return facts.empty(); }

  /// Renders the explanation with entity/relation names.
  std::string ToString(const Dataset& dataset) const;
};

/// Returns the source entity of a prediction: the head for tail
/// predictions, the tail for head predictions. Explanations are built from
/// this entity's training facts.
inline EntityId SourceEntity(const Triple& prediction,
                             PredictionTarget target) {
  return target == PredictionTarget::kTail ? prediction.head
                                           : prediction.tail;
}

/// Returns the predicted entity: the tail for tail predictions, the head
/// for head predictions.
inline EntityId PredictedEntity(const Triple& prediction,
                                PredictionTarget target) {
  return target == PredictionTarget::kTail ? prediction.tail
                                           : prediction.head;
}

/// Rewrites `fact` (a fact featuring `from`) so it features `to` instead;
/// used when transferring sufficient-explanation facts onto entities to
/// convert.
Triple TransferFact(const Triple& fact, EntityId from, EntityId to);

/// Rich rendering of an explanation: each fact is annotated with the
/// shortest training-graph path connecting its other endpoint to the
/// predicted entity — the topological reason the Pre-Filter deemed it
/// promising, and a human-readable account of how the evidence reaches the
/// answer. Example output:
///
///   <Barack_Obama, born_in, Honolulu>
///     via Honolulu -located_in-> USA
std::string ExplainWithPaths(const Explanation& explanation,
                             const Dataset& dataset,
                             const Triple& prediction,
                             PredictionTarget target);

}  // namespace kelpie

#endif  // KELPIE_CORE_EXPLANATION_H_
