#include "core/kelpie.h"

namespace kelpie {

namespace {

/// Applies the facade-level num_threads override to the engine options.
RelevanceEngineOptions EffectiveEngineOptions(const KelpieOptions& options) {
  RelevanceEngineOptions engine = options.engine;
  if (options.num_threads > 0) {
    engine.num_threads = options.num_threads;
  }
  return engine;
}

}  // namespace

Kelpie::Kelpie(const LinkPredictionModel& model, const Dataset& dataset,
               KelpieOptions options)
    : options_(options),
      prefilter_(dataset, options.prefilter),
      engine_(model, dataset, EffectiveEngineOptions(options)),
      builder_(engine_, prefilter_, options.builder) {}

Explanation Kelpie::ExplainNecessary(const Triple& prediction,
                                     PredictionTarget target,
                                     const CandidateObserver& observer) {
  return builder_.BuildNecessary(prediction, target, observer);
}

Explanation Kelpie::ExplainSufficient(const Triple& prediction,
                                      PredictionTarget target,
                                      std::vector<EntityId>* conversion_set_out,
                                      const CandidateObserver& observer) {
  std::vector<EntityId> conversion_set =
      engine_.SampleConversionSet(prediction, target);
  if (conversion_set_out != nullptr) {
    *conversion_set_out = conversion_set;
  }
  return builder_.BuildSufficient(prediction, target, conversion_set,
                                  observer);
}

Explanation Kelpie::ExplainSufficientWithSet(
    const Triple& prediction, PredictionTarget target,
    const std::vector<EntityId>& conversion_set,
    const CandidateObserver& observer) {
  return builder_.BuildSufficient(prediction, target, conversion_set,
                                  observer);
}

}  // namespace kelpie
