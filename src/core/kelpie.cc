#include "core/kelpie.h"

#include "common/trace.h"

namespace kelpie {

namespace {

/// Applies the facade-level num_threads override to the engine options.
RelevanceEngineOptions EffectiveEngineOptions(const KelpieOptions& options) {
  RelevanceEngineOptions engine = options.engine;
  if (options.num_threads > 0) {
    engine.num_threads = options.num_threads;
  }
  return engine;
}

/// Materializes the control bundle of one extraction call. The WorkBudget
/// lives on the caller's stack (`budget_storage`): each extraction gets a
/// fresh meter, so `limits.work_budget` bounds every call independently.
ExtractionControl MakeControl(const ExtractionLimits& limits,
                              WorkBudget& budget_storage) {
  ExtractionControl control;
  if (limits.work_budget > 0) {
    budget_storage.Reset(limits.work_budget);
    control.budget = &budget_storage;
  }
  Deadline deadline = limits.deadline;
  if (limits.timeout_seconds > 0.0) {
    deadline =
        Deadline::Earliest(deadline, Deadline::After(limits.timeout_seconds));
  }
  control.deadline = deadline;
  control.cancel = limits.cancel;
  return control;
}

}  // namespace

Kelpie::Kelpie(const LinkPredictionModel& model, const Dataset& dataset,
               KelpieOptions options)
    : options_(options),
      prefilter_(dataset, options.prefilter),
      engine_(model, dataset, EffectiveEngineOptions(options)),
      builder_(engine_, prefilter_, options.builder) {}

Explanation Kelpie::ExplainNecessary(const Triple& prediction,
                                     PredictionTarget target,
                                     const CandidateObserver& observer,
                                     const ExtractionLimits& limits) {
  trace::Span span("kelpie.explain_necessary");
  WorkBudget budget;
  const ExtractionControl control = MakeControl(limits, budget);
  return builder_.BuildNecessary(prediction, target, observer, control);
}

Explanation Kelpie::ExplainSufficient(const Triple& prediction,
                                      PredictionTarget target,
                                      std::vector<EntityId>* conversion_set_out,
                                      const CandidateObserver& observer,
                                      const ExtractionLimits& limits) {
  std::vector<EntityId> conversion_set =
      engine_.SampleConversionSet(prediction, target);
  if (conversion_set_out != nullptr) {
    *conversion_set_out = conversion_set;
  }
  return ExplainSufficientWithSet(prediction, target, conversion_set,
                                  observer, limits);
}

Explanation Kelpie::ExplainSufficientWithSet(
    const Triple& prediction, PredictionTarget target,
    const std::vector<EntityId>& conversion_set,
    const CandidateObserver& observer, const ExtractionLimits& limits) {
  trace::Span span("kelpie.explain_sufficient");
  WorkBudget budget;
  const ExtractionControl control = MakeControl(limits, budget);
  return builder_.BuildSufficient(prediction, target, conversion_set,
                                  observer, control);
}

}  // namespace kelpie
