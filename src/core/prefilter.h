#ifndef KELPIE_CORE_PREFILTER_H_
#define KELPIE_CORE_PREFILTER_H_

#include <vector>

#include "core/explanation.h"
#include "kgraph/dataset.h"

namespace kelpie {

/// How the Pre-Filter measures the promisingness γ of a source-entity fact
/// (Section 4.1).
enum class PromisingnessPolicy {
  /// γ(<h, s, q>) = length of the shortest undirected path from q to the
  /// predicted entity, ignoring the prediction triple itself. Lower is
  /// more promising. The paper's default.
  kTopology,
  /// Type-similarity variant mentioned in Section 4.1: facts whose other
  /// endpoint has a relation signature similar to the predicted entity's
  /// are prioritized (γ = 1 - cosine similarity of relation-incidence
  /// vectors). Reported in the paper's repository as comparable to the
  /// topology policy.
  kTypeSimilarity,
  /// No filtering: returns all source-entity facts (the Figure 6 ablation).
  kNone,
};

/// Options of the Pre-Filter module.
struct PreFilterOptions {
  PromisingnessPolicy policy = PromisingnessPolicy::kTopology;
  /// The top-k cut applied on promisingness values (paper default: 20).
  size_t top_k = 20;
};

/// The Pre-Filter reduces G^h_train — all training facts of the prediction's
/// source entity — to the top-k most promising facts F^h_train, preventing
/// combinatorial explosion for high-degree entities.
class PreFilter {
 public:
  PreFilter(const Dataset& dataset, PreFilterOptions options)
      : dataset_(dataset), options_(options) {}

  /// Returns the most promising facts of the prediction's source entity,
  /// ordered by increasing γ (most promising first). The prediction triple
  /// itself is never returned.
  std::vector<Triple> MostPromisingFacts(const Triple& prediction,
                                         PredictionTarget target) const;

  /// γ values aligned with the facts MostPromisingFacts would sort; exposed
  /// for tests and the ablation bench.
  std::vector<double> Promisingness(const Triple& prediction,
                                    PredictionTarget target,
                                    const std::vector<Triple>& facts) const;

 private:
  std::vector<double> TopologyGamma(const Triple& prediction,
                                    PredictionTarget target,
                                    const std::vector<Triple>& facts) const;
  std::vector<double> TypeGamma(const Triple& prediction,
                                PredictionTarget target,
                                const std::vector<Triple>& facts) const;

  const Dataset& dataset_;
  PreFilterOptions options_;
};

}  // namespace kelpie

#endif  // KELPIE_CORE_PREFILTER_H_
