#ifndef KELPIE_KGRAPH_GRAPH_H_
#define KELPIE_KGRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kgraph/triple.h"

namespace kelpie {

/// An indexed view over a set of triples (usually the training split).
///
/// Provides the access paths Kelpie needs:
///  - `FactsOf(e)`: all triples mentioning entity e (the paper's G^e_train);
///  - O(1) membership tests;
///  - undirected adjacency for BFS promisingness (Pre-Filter);
///  - per-entity degrees (skew statistics, Figure 6's degree buckets).
///
/// The index is immutable after construction; Kelpie never mutates the
/// training graph in place — modified graphs are built explicitly by the
/// end-to-end pipeline.
class GraphIndex {
 public:
  GraphIndex() = default;

  /// Builds the index. `num_entities` must exceed every entity id in
  /// `triples`.
  GraphIndex(std::vector<Triple> triples, size_t num_entities);

  size_t num_entities() const { return num_entities_; }
  size_t num_triples() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  /// True if the exact triple is present.
  bool Contains(const Triple& t) const {
    return membership_.count(t.Key()) > 0;
  }

  /// All triples mentioning `e` as head or tail. A self-loop <e, r, e>
  /// appears once.
  std::vector<Triple> FactsOf(EntityId e) const;

  /// Number of triples mentioning `e`.
  size_t Degree(EntityId e) const {
    return facts_of_[static_cast<size_t>(e)].size();
  }

  /// Indices (into triples()) of the triples mentioning `e`.
  const std::vector<uint32_t>& FactIndicesOf(EntityId e) const {
    return facts_of_[static_cast<size_t>(e)];
  }

  /// Undirected neighbor entities of `e` (deduplicated).
  std::vector<EntityId> NeighborsOf(EntityId e) const;

 private:
  size_t num_entities_ = 0;
  std::vector<Triple> triples_;
  std::unordered_set<uint64_t> membership_;
  std::vector<std::vector<uint32_t>> facts_of_;  // entity -> triple indices
};

/// Multi-hop distance oracle: unoriented BFS over a GraphIndex.
///
/// `DistancesFrom(start)` returns, for every entity, the length of the
/// shortest undirected path from `start`, or -1 if unreachable. An optional
/// `ignored` triple is treated as absent — the Pre-Filter excludes the very
/// prediction being explained when measuring promisingness.
std::vector<int32_t> DistancesFrom(const GraphIndex& graph, EntityId start,
                                   const Triple* ignored = nullptr);

/// Length of the shortest undirected path between `from` and `to`
/// (early-exits once `to` is reached), or -1 if disconnected.
int32_t ShortestPathLength(const GraphIndex& graph, EntityId from,
                           EntityId to, const Triple* ignored = nullptr);

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_GRAPH_H_
