#ifndef KELPIE_KGRAPH_DICTIONARY_H_
#define KELPIE_KGRAPH_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "kgraph/triple.h"

namespace kelpie {

/// Bidirectional mapping between human-readable names and dense integer ids.
/// Used once for entities and once for relations in every Dataset.
/// Ids are assigned densely in insertion order starting from 0.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of `name`, inserting it if absent.
  int32_t GetOrAdd(std::string_view name);

  /// Returns the id of `name`, or a NotFound status.
  Result<int32_t> Find(std::string_view name) const;

  /// True if `name` is present.
  bool Contains(std::string_view name) const;

  /// Returns the name for `id`. Requires 0 <= id < size().
  const std::string& NameOf(int32_t id) const;

  /// Number of distinct names.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// All names, indexed by id.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> ids_;
};

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_DICTIONARY_H_
