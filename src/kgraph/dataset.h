#ifndef KELPIE_KGRAPH_DATASET_H_
#define KELPIE_KGRAPH_DATASET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "kgraph/dictionary.h"
#include "kgraph/graph.h"
#include "kgraph/triple.h"

namespace kelpie {

/// A link-prediction dataset: entity/relation dictionaries and the
/// train/valid/test triple splits, plus the indexes evaluation and Kelpie
/// need (training-graph index and the filtered-ranking maps).
///
/// Mirrors the research-dataset structure of Section 2.1 of the paper:
/// G = G_train ∪ G_valid ∪ G_test.
class Dataset {
 public:
  /// Assembles a dataset from already-encoded splits. Dictionaries may be
  /// empty when triples were produced synthetically with ids only; in that
  /// case names are synthesized as "e<id>" / "r<id>".
  Dataset(std::string name, Dictionary entities, Dictionary relations,
          std::vector<Triple> train, std::vector<Triple> valid,
          std::vector<Triple> test);

  const std::string& name() const { return name_; }
  size_t num_entities() const { return entities_.size(); }
  size_t num_relations() const { return relations_.size(); }

  const Dictionary& entities() const { return entities_; }
  const Dictionary& relations() const { return relations_; }

  const std::vector<Triple>& train() const { return train_; }
  const std::vector<Triple>& valid() const { return valid_; }
  const std::vector<Triple>& test() const { return test_; }

  /// Index over the training split (Kelpie only reasons about training
  /// facts).
  const GraphIndex& train_graph() const { return *train_graph_; }

  /// Entities that would make <h, r, e> a known fact (any split). Used for
  /// filtered ranking: known answers other than the target do not count as
  /// mistakes.
  const std::unordered_set<EntityId>& KnownTails(EntityId h,
                                                 RelationId r) const;

  /// Entities that would make <e, r, t> a known fact (any split).
  const std::unordered_set<EntityId>& KnownHeads(RelationId r,
                                                 EntityId t) const;

  /// True if <h,r,t> occurs in any split.
  bool IsKnown(const Triple& t) const { return all_.count(t.Key()) > 0; }

  /// Human-readable rendering "<head, relation, tail>".
  std::string TripleToString(const Triple& t) const;

  /// Builds a copy of this dataset whose training set lacks `removed` and
  /// additionally contains `added` (deduplicated). Valid/test splits and
  /// dictionaries are preserved. This is the mutation primitive of the
  /// end-to-end evaluation: explanations are applied to G_train and the
  /// model is retrained from scratch.
  Dataset WithModifiedTraining(const std::vector<Triple>& removed,
                               const std::vector<Triple>& added) const;

 private:
  void BuildIndexes();

  std::string name_;
  Dictionary entities_;
  Dictionary relations_;
  std::vector<Triple> train_;
  std::vector<Triple> valid_;
  std::vector<Triple> test_;

  std::shared_ptr<const GraphIndex> train_graph_;
  std::unordered_set<uint64_t> all_;
  // (h, r) -> known tails; (r, t) -> known heads, over all splits.
  std::unordered_map<uint64_t, std::unordered_set<EntityId>> known_tails_;
  std::unordered_map<uint64_t, std::unordered_set<EntityId>> known_heads_;
};

/// Summary statistics in the shape of the paper's Table 1.
struct DatasetStats {
  std::string name;
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t num_train = 0;
  size_t num_valid = 0;
  size_t num_test = 0;
  double mean_entity_degree = 0.0;
  size_t max_entity_degree = 0;
};

/// Computes Table-1 style statistics for `dataset`.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_DATASET_H_
