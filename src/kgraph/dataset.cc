#include "kgraph/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace kelpie {

namespace {

uint64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

const std::unordered_set<EntityId>& EmptyEntitySet() {
  static const std::unordered_set<EntityId>* kEmpty =
      new std::unordered_set<EntityId>();
  return *kEmpty;
}

}  // namespace

Dataset::Dataset(std::string name, Dictionary entities, Dictionary relations,
                 std::vector<Triple> train, std::vector<Triple> valid,
                 std::vector<Triple> test)
    : name_(std::move(name)),
      entities_(std::move(entities)),
      relations_(std::move(relations)),
      train_(std::move(train)),
      valid_(std::move(valid)),
      test_(std::move(test)) {
  BuildIndexes();
}

void Dataset::BuildIndexes() {
  train_graph_ =
      std::make_shared<GraphIndex>(train_, entities_.size());
  all_.clear();
  known_tails_.clear();
  known_heads_.clear();
  for (const auto* split : {&train_, &valid_, &test_}) {
    for (const Triple& t : *split) {
      all_.insert(t.Key());
      known_tails_[PairKey(t.head, t.relation)].insert(t.tail);
      known_heads_[PairKey(t.relation, t.tail)].insert(t.head);
    }
  }
}

const std::unordered_set<EntityId>& Dataset::KnownTails(EntityId h,
                                                        RelationId r) const {
  auto it = known_tails_.find(PairKey(h, r));
  return it == known_tails_.end() ? EmptyEntitySet() : it->second;
}

const std::unordered_set<EntityId>& Dataset::KnownHeads(RelationId r,
                                                        EntityId t) const {
  auto it = known_heads_.find(PairKey(r, t));
  return it == known_heads_.end() ? EmptyEntitySet() : it->second;
}

std::string Dataset::TripleToString(const Triple& t) const {
  std::string out = "<";
  out += entities_.NameOf(t.head);
  out += ", ";
  out += relations_.NameOf(t.relation);
  out += ", ";
  out += entities_.NameOf(t.tail);
  out += ">";
  return out;
}

Dataset Dataset::WithModifiedTraining(const std::vector<Triple>& removed,
                                      const std::vector<Triple>& added) const {
  std::unordered_set<uint64_t> to_remove;
  to_remove.reserve(removed.size());
  for (const Triple& t : removed) {
    to_remove.insert(t.Key());
  }
  std::vector<Triple> new_train;
  new_train.reserve(train_.size() + added.size());
  std::unordered_set<uint64_t> present;
  present.reserve(train_.size() + added.size());
  for (const Triple& t : train_) {
    if (to_remove.count(t.Key())) continue;
    if (present.insert(t.Key()).second) {
      new_train.push_back(t);
    }
  }
  for (const Triple& t : added) {
    if (to_remove.count(t.Key())) continue;
    if (present.insert(t.Key()).second) {
      new_train.push_back(t);
    }
  }
  return Dataset(name_, entities_, relations_, std::move(new_train), valid_,
                 test_);
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name();
  stats.num_entities = dataset.num_entities();
  stats.num_relations = dataset.num_relations();
  stats.num_train = dataset.train().size();
  stats.num_valid = dataset.valid().size();
  stats.num_test = dataset.test().size();
  const GraphIndex& g = dataset.train_graph();
  size_t total_degree = 0;
  for (size_t e = 0; e < dataset.num_entities(); ++e) {
    size_t d = g.Degree(static_cast<EntityId>(e));
    total_degree += d;
    stats.max_entity_degree = std::max(stats.max_entity_degree, d);
  }
  stats.mean_entity_degree =
      dataset.num_entities() == 0
          ? 0.0
          : static_cast<double>(total_degree) /
                static_cast<double>(dataset.num_entities());
  return stats;
}

}  // namespace kelpie
