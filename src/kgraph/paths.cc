#include "kgraph/paths.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace kelpie {

std::vector<PathStep> ShortestPath(const GraphIndex& graph, EntityId from,
                                   EntityId to, const Triple* ignored) {
  KELPIE_CHECK(from >= 0 &&
               static_cast<size_t>(from) < graph.num_entities());
  KELPIE_CHECK(to >= 0 && static_cast<size_t>(to) < graph.num_entities());
  if (from == to) return {};

  // BFS with parent pointers: parent_edge[e] is the index of the triple
  // through which e was discovered; kUnvisited marks the frontier.
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);
  std::vector<uint32_t> parent_edge(graph.num_entities(), kUnvisited);
  std::vector<EntityId> parent_node(graph.num_entities(), kNoEntity);
  std::deque<EntityId> frontier{from};
  std::vector<char> visited(graph.num_entities(), 0);
  visited[static_cast<size_t>(from)] = 1;
  bool found = false;

  while (!frontier.empty() && !found) {
    EntityId cur = frontier.front();
    frontier.pop_front();
    for (uint32_t i : graph.FactIndicesOf(cur)) {
      const Triple& t = graph.triples()[i];
      if (ignored != nullptr && t == *ignored) continue;
      EntityId other = (t.head == cur) ? t.tail : t.head;
      if (visited[static_cast<size_t>(other)]) continue;
      visited[static_cast<size_t>(other)] = 1;
      parent_edge[static_cast<size_t>(other)] = i;
      parent_node[static_cast<size_t>(other)] = cur;
      if (other == to) {
        found = true;
        break;
      }
      frontier.push_back(other);
    }
  }
  if (!found) return {};

  // Walk parents back from `to` and reverse.
  std::vector<PathStep> path;
  EntityId cur = to;
  while (cur != from) {
    uint32_t edge = parent_edge[static_cast<size_t>(cur)];
    EntityId prev = parent_node[static_cast<size_t>(cur)];
    const Triple& t = graph.triples()[edge];
    PathStep step;
    step.triple = t;
    step.forward = (t.head == prev);  // walked head -> tail
    path.push_back(step);
    cur = prev;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace kelpie
