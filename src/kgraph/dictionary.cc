#include "kgraph/dictionary.h"

#include "common/logging.h"

namespace kelpie {

int32_t Dictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<int32_t> Dictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("name not in dictionary: " + std::string(name));
  }
  return it->second;
}

bool Dictionary::Contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& Dictionary::NameOf(int32_t id) const {
  KELPIE_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace kelpie
