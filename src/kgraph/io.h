#ifndef KELPIE_KGRAPH_IO_H_
#define KELPIE_KGRAPH_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "kgraph/dataset.h"

namespace kelpie {

/// Writes triples as tab-separated "head<TAB>relation<TAB>tail" lines using
/// the dataset dictionaries, the interchange format of the standard LP
/// benchmark distributions (FB15k, WN18, ...). The write is atomic (temp +
/// fsync + rename): an interrupted save never leaves a torn file behind.
Status SaveTriplesTsv(const Dataset& dataset,
                      const std::vector<Triple>& triples,
                      const std::string& path);

/// Saves all three splits of `dataset` as <dir>/train.txt, valid.txt,
/// test.txt. `dir` must already exist.
Status SaveDatasetTsv(const Dataset& dataset, const std::string& dir);

/// Loads a dataset from <dir>/train.txt, valid.txt, test.txt in the TSV
/// format above. Entity/relation ids are assigned in order of first
/// appearance (train first).
Result<Dataset> LoadDatasetTsv(const std::string& name,
                               const std::string& dir);

/// Parses triples from in-memory TSV text, growing the dictionaries.
/// Malformed lines (wrong field count, empty fields) are reported with a
/// 1-based line number, prefixed with `source` (a file name; empty for
/// anonymous text).
Result<std::vector<Triple>> ParseTriplesTsv(const std::string& text,
                                            Dictionary& entities,
                                            Dictionary& relations,
                                            const std::string& source = "");

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_IO_H_
