#ifndef KELPIE_KGRAPH_TRIPLE_H_
#define KELPIE_KGRAPH_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace kelpie {

/// Integer identifier of an entity (node) in a knowledge graph.
using EntityId = int32_t;
/// Integer identifier of a relation (edge label) in a knowledge graph.
using RelationId = int32_t;

/// Sentinel for "no entity".
inline constexpr EntityId kNoEntity = -1;
/// Sentinel for "no relation".
inline constexpr RelationId kNoRelation = -1;

/// A fact <head, relation, tail>: the unit of knowledge in a KG and the unit
/// of explanation in Kelpie.
struct Triple {
  EntityId head = kNoEntity;
  RelationId relation = kNoRelation;
  EntityId tail = kNoEntity;

  Triple() = default;
  Triple(EntityId h, RelationId r, EntityId t)
      : head(h), relation(r), tail(t) {}

  bool operator==(const Triple& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }

  /// Lexicographic order (head, relation, tail); enables use in ordered
  /// containers and deterministic sorting.
  bool operator<(const Triple& other) const {
    if (head != other.head) return head < other.head;
    if (relation != other.relation) return relation < other.relation;
    return tail < other.tail;
  }

  /// True if `e` appears as head or tail.
  bool Mentions(EntityId e) const { return head == e || tail == e; }

  /// Packs the triple into a single 64-bit key (21 bits per component);
  /// valid for ids below 2^20, far above this library's scales.
  uint64_t Key() const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(head)) << 42) |
           (static_cast<uint64_t>(static_cast<uint32_t>(relation)) << 21) |
           static_cast<uint64_t>(static_cast<uint32_t>(tail));
  }
};

/// Hash functor for Triple, for unordered containers.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t k = t.Key();
    // SplitMix64 finalizer.
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(k ^ (k >> 31));
  }
};

/// An incomplete triple <head, relation, ?> or <?, relation, tail> — the
/// query form of a link prediction.
enum class PredictionTarget { kTail, kHead };

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_TRIPLE_H_
