#include "kgraph/graph.h"

#include <deque>

#include "common/logging.h"

namespace kelpie {

GraphIndex::GraphIndex(std::vector<Triple> triples, size_t num_entities)
    : num_entities_(num_entities), triples_(std::move(triples)) {
  facts_of_.resize(num_entities_);
  membership_.reserve(triples_.size() * 2);
  for (uint32_t i = 0; i < triples_.size(); ++i) {
    const Triple& t = triples_[i];
    KELPIE_CHECK(t.head >= 0 &&
                 static_cast<size_t>(t.head) < num_entities_);
    KELPIE_CHECK(t.tail >= 0 &&
                 static_cast<size_t>(t.tail) < num_entities_);
    membership_.insert(t.Key());
    facts_of_[static_cast<size_t>(t.head)].push_back(i);
    if (t.tail != t.head) {
      facts_of_[static_cast<size_t>(t.tail)].push_back(i);
    }
  }
}

std::vector<Triple> GraphIndex::FactsOf(EntityId e) const {
  KELPIE_CHECK(e >= 0 && static_cast<size_t>(e) < num_entities_);
  std::vector<Triple> out;
  const auto& indices = facts_of_[static_cast<size_t>(e)];
  out.reserve(indices.size());
  for (uint32_t i : indices) {
    out.push_back(triples_[i]);
  }
  return out;
}

std::vector<EntityId> GraphIndex::NeighborsOf(EntityId e) const {
  std::vector<EntityId> out;
  std::unordered_set<EntityId> seen;
  for (uint32_t i : FactIndicesOf(e)) {
    const Triple& t = triples_[i];
    EntityId other = (t.head == e) ? t.tail : t.head;
    if (other != e && seen.insert(other).second) {
      out.push_back(other);
    }
  }
  return out;
}

std::vector<int32_t> DistancesFrom(const GraphIndex& graph, EntityId start,
                                   const Triple* ignored) {
  KELPIE_CHECK(start >= 0 &&
               static_cast<size_t>(start) < graph.num_entities());
  std::vector<int32_t> dist(graph.num_entities(), -1);
  dist[static_cast<size_t>(start)] = 0;
  std::deque<EntityId> frontier{start};
  while (!frontier.empty()) {
    EntityId cur = frontier.front();
    frontier.pop_front();
    int32_t next_dist = dist[static_cast<size_t>(cur)] + 1;
    for (uint32_t i : graph.FactIndicesOf(cur)) {
      const Triple& t = graph.triples()[i];
      if (ignored != nullptr && t == *ignored) continue;
      EntityId other = (t.head == cur) ? t.tail : t.head;
      if (dist[static_cast<size_t>(other)] < 0) {
        dist[static_cast<size_t>(other)] = next_dist;
        frontier.push_back(other);
      }
    }
  }
  return dist;
}

int32_t ShortestPathLength(const GraphIndex& graph, EntityId from,
                           EntityId to, const Triple* ignored) {
  KELPIE_CHECK(from >= 0 &&
               static_cast<size_t>(from) < graph.num_entities());
  KELPIE_CHECK(to >= 0 && static_cast<size_t>(to) < graph.num_entities());
  if (from == to) return 0;
  std::vector<int32_t> dist(graph.num_entities(), -1);
  dist[static_cast<size_t>(from)] = 0;
  std::deque<EntityId> frontier{from};
  while (!frontier.empty()) {
    EntityId cur = frontier.front();
    frontier.pop_front();
    int32_t next_dist = dist[static_cast<size_t>(cur)] + 1;
    for (uint32_t i : graph.FactIndicesOf(cur)) {
      const Triple& t = graph.triples()[i];
      if (ignored != nullptr && t == *ignored) continue;
      EntityId other = (t.head == cur) ? t.tail : t.head;
      if (other == to) return next_dist;
      if (dist[static_cast<size_t>(other)] < 0) {
        dist[static_cast<size_t>(other)] = next_dist;
        frontier.push_back(other);
      }
    }
  }
  return -1;
}

}  // namespace kelpie
