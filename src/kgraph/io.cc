#include "kgraph/io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace kelpie {

Status SaveTriplesTsv(const Dataset& dataset,
                      const std::vector<Triple>& triples,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const Triple& t : triples) {
    out << dataset.entities().NameOf(t.head) << '\t'
        << dataset.relations().NameOf(t.relation) << '\t'
        << dataset.entities().NameOf(t.tail) << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Status SaveDatasetTsv(const Dataset& dataset, const std::string& dir) {
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.train(), dir + "/train.txt"));
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.valid(), dir + "/valid.txt"));
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.test(), dir + "/test.txt"));
  return Status::Ok();
}

Result<std::vector<Triple>> ParseTriplesTsv(const std::string& text,
                                            Dictionary& entities,
                                            Dictionary& relations) {
  std::vector<Triple> out;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(stripped, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 3 tab-separated fields, got " +
                                     std::to_string(fields.size()));
    }
    EntityId h = entities.GetOrAdd(StripWhitespace(fields[0]));
    RelationId r = relations.GetOrAdd(StripWhitespace(fields[1]));
    EntityId t = entities.GetOrAdd(StripWhitespace(fields[2]));
    out.emplace_back(h, r, t);
  }
  return out;
}

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

}  // namespace

Result<Dataset> LoadDatasetTsv(const std::string& name,
                               const std::string& dir) {
  Dictionary entities;
  Dictionary relations;
  std::string text;
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/train.txt"));
  std::vector<Triple> train;
  KELPIE_ASSIGN_OR_RETURN(train, ParseTriplesTsv(text, entities, relations));
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/valid.txt"));
  std::vector<Triple> valid;
  KELPIE_ASSIGN_OR_RETURN(valid, ParseTriplesTsv(text, entities, relations));
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/test.txt"));
  std::vector<Triple> test;
  KELPIE_ASSIGN_OR_RETURN(test, ParseTriplesTsv(text, entities, relations));
  return Dataset(name, std::move(entities), std::move(relations),
                 std::move(train), std::move(valid), std::move(test));
}

}  // namespace kelpie
