#include "kgraph/io.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/string_util.h"

namespace kelpie {

Status SaveTriplesTsv(const Dataset& dataset,
                      const std::vector<Triple>& triples,
                      const std::string& path) {
  std::string contents;
  for (const Triple& t : triples) {
    contents += dataset.entities().NameOf(t.head);
    contents += '\t';
    contents += dataset.relations().NameOf(t.relation);
    contents += '\t';
    contents += dataset.entities().NameOf(t.tail);
    contents += '\n';
  }
  return WriteFileAtomic(path, contents);
}

Status SaveDatasetTsv(const Dataset& dataset, const std::string& dir) {
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.train(), dir + "/train.txt"));
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.valid(), dir + "/valid.txt"));
  KELPIE_RETURN_IF_ERROR(
      SaveTriplesTsv(dataset, dataset.test(), dir + "/test.txt"));
  return Status::Ok();
}

Result<std::vector<Triple>> ParseTriplesTsv(const std::string& text,
                                            Dictionary& entities,
                                            Dictionary& relations,
                                            const std::string& source) {
  const std::string where = source.empty() ? "" : source + ": ";
  std::vector<Triple> out;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    // Split the raw line: stripping first would swallow empty head/tail
    // fields into the neighboring tab and misreport them as a field-count
    // problem. Per-field stripping below handles surrounding spaces and \r.
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          where + "line " + std::to_string(line_no) +
          ": expected 3 tab-separated fields, got " +
          std::to_string(fields.size()));
    }
    std::string_view head = StripWhitespace(fields[0]);
    std::string_view relation = StripWhitespace(fields[1]);
    std::string_view tail = StripWhitespace(fields[2]);
    if (head.empty() || relation.empty() || tail.empty()) {
      const char* which = head.empty() ? "head"
                          : relation.empty() ? "relation"
                                             : "tail";
      return Status::InvalidArgument(where + "line " +
                                     std::to_string(line_no) + ": empty " +
                                     which + " field");
    }
    EntityId h = entities.GetOrAdd(head);
    RelationId r = relations.GetOrAdd(relation);
    EntityId t = entities.GetOrAdd(tail);
    out.emplace_back(h, r, t);
  }
  return out;
}

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

}  // namespace

Result<Dataset> LoadDatasetTsv(const std::string& name,
                               const std::string& dir) {
  Dictionary entities;
  Dictionary relations;
  std::string text;
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/train.txt"));
  std::vector<Triple> train;
  KELPIE_ASSIGN_OR_RETURN(
      train, ParseTriplesTsv(text, entities, relations, dir + "/train.txt"));
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/valid.txt"));
  std::vector<Triple> valid;
  KELPIE_ASSIGN_OR_RETURN(
      valid, ParseTriplesTsv(text, entities, relations, dir + "/valid.txt"));
  KELPIE_ASSIGN_OR_RETURN(text, ReadWholeFile(dir + "/test.txt"));
  std::vector<Triple> test;
  KELPIE_ASSIGN_OR_RETURN(
      test, ParseTriplesTsv(text, entities, relations, dir + "/test.txt"));
  return Dataset(name, std::move(entities), std::move(relations),
                 std::move(train), std::move(valid), std::move(test));
}

}  // namespace kelpie
