#ifndef KELPIE_KGRAPH_PATHS_H_
#define KELPIE_KGRAPH_PATHS_H_

#include <vector>

#include "kgraph/graph.h"

namespace kelpie {

/// One step of an undirected path: the traversed triple plus the direction
/// it was walked in (forward = head-to-tail).
struct PathStep {
  Triple triple;
  bool forward = true;
};

/// Reconstructs one shortest undirected path from `from` to `to` over the
/// graph (BFS parent-pointers; deterministic: the first-discovered parent
/// wins, which follows the graph's fact insertion order). Returns an empty
/// vector when `from == to` and when no path exists — use
/// ShortestPathLength to distinguish the two.
///
/// `ignored`, when non-null, is treated as absent from the graph (the
/// Pre-Filter's convention of excluding the prediction being explained).
std::vector<PathStep> ShortestPath(const GraphIndex& graph, EntityId from,
                                   EntityId to,
                                   const Triple* ignored = nullptr);

}  // namespace kelpie

#endif  // KELPIE_KGRAPH_PATHS_H_
