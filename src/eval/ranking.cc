#include "eval/ranking.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "math/matrix.h"
#include "math/quant.h"
#include "math/simd.h"

namespace kelpie {

namespace {

/// Per-thread score workspace for the all-candidate sweeps. The filtered
/// ranks are recomputed once per candidate per post-training in the
/// relevance engine; reusing the buffer removes a num_entities-sized
/// allocation from every call.
std::span<float> ScoreScratch(size_t n) {
  thread_local std::vector<float> scratch;
  scratch.resize(n);
  return scratch;
}

std::atomic<bool> g_default_quantized_shortlist{false};

struct QuantMetrics {
  metrics::Counter& sweeps;
  metrics::Counter& rescored;
  metrics::Counter& fallbacks;
};

/// Resolved on *every* rank call, quantization on or off, so the metric
/// families are registered identically and deterministic snapshots stay
/// byte-identical regardless of the flag. All wall-clock class (masked).
QuantMetrics ResolveQuantMetrics() {
  metrics::Registry& reg = metrics::Registry::Global();
  const metrics::Determinism wc = metrics::Determinism::kWallClock;
  return QuantMetrics{
      reg.GetCounter("kelpie_quant_sweeps_total", {}, wc,
                     "Filtered ranks served by the int8 candidate sweep."),
      reg.GetCounter("kelpie_quant_rescored_total", {}, wc,
                     "Uncertain-band candidates re-scored exactly."),
      reg.GetCounter("kelpie_quant_fallbacks_total", {}, wc,
                     "Quantized rank requests that fell back to the exact "
                     "sweep."),
  };
}

/// The certified-interval quantized rank (DESIGN.md §15). Returns nullopt
/// whenever the byte-identity guarantee cannot be upheld cheaply — caller
/// falls back to the exact sweep:
///  - the model exposes no CandidateSweep / entity table, or shapes
///    disagree;
///  - the entity table is not quantizable (QuantizedEntityTable null);
///  - the query vector is non-finite (quantization undefined);
///  - the target's exact score is non-finite (RankFromScores' NaN
///    semantics — every comparison false — must be reproduced by the
///    exact path).
///
/// Otherwise the returned rank equals RankFromScores over the exact sweep
/// bit for bit: every candidate is either classified through an interval
/// that certifiably contains its exact float kernel value, or re-scored
/// through the very same per-row kernels the full sweep reduces to.
std::optional<int> QuantRank(const LinkPredictionModel& model,
                             const std::optional<CandidateSweep>& sweep,
                             EntityId target,
                             const std::unordered_set<EntityId>* filtered_out,
                             QuantMetrics& qm) {
  if (!sweep.has_value()) return std::nullopt;
  const Matrix* table = model.EntityTable();
  if (table == nullptr) return std::nullopt;
  const size_t n = table->rows();
  const size_t cols = table->cols();
  if (n != model.num_entities() || cols != sweep->query.size()) {
    return std::nullopt;
  }
  if (!sweep->bias.empty() && sweep->bias.size() != n) return std::nullopt;
  std::shared_ptr<const quant::QuantizedTable> qt =
      model.QuantizedEntityTable();
  if (qt == nullptr || qt->rows != n || qt->cols != cols) return std::nullopt;
  quant::QuantizedVec qx = quant::QuantizeVec(sweep->query);
  if (!qx.finite) return std::nullopt;
  KELPIE_CHECK(target >= 0 && static_cast<size_t>(target) < n);

  thread_local std::vector<double> approx_buf;
  thread_local std::vector<double> err_buf;
  approx_buf.resize(n);
  err_buf.resize(n);
  std::span<double> approx(approx_buf);
  std::span<double> err(err_buf);

  const bool dot_kernel = sweep->kernel == CandidateSweep::Kernel::kDot;
  if (dot_kernel) {
    quant::ApproxDots(*qt, qx, approx, err);
  } else {
    quant::ApproxSquaredDistances(*qt, qx, approx, err);
  }

  const std::span<const float> query(sweep->query);
  // Exact target score through the per-row kernels — bit-identical to the
  // value the full sweep would write for `target` (the PR 5 per-row
  // equivalence contract of simd::GemvRowMajor / SquaredDistanceRows).
  const std::span<const float> target_row =
      table->Row(static_cast<size_t>(target));
  float target_pre;    // kernel-space value (dot or squared distance)
  float target_final;  // final score after bias / -sqrt transform
  if (dot_kernel) {
    target_pre = simd::Dot(target_row, query);
    target_final = sweep->bias.empty()
                       ? target_pre
                       : target_pre + sweep->bias[static_cast<size_t>(target)];
  } else {
    target_pre = simd::SquaredDistance(target_row, query);
    target_final = -std::sqrt(target_pre);
  }
  if (!std::isfinite(target_final)) return std::nullopt;

  // One float ulp of relative rounding, used to widen the interval across
  // the sweep's final `score += 1.0f * bias` add (Axpy): the add's result
  // is fl(dot + b), within 2^-23·|value| of the real sum.
  constexpr double kUlp = 0x1p-23;
  // Multiplicative guard on the certainly-worse side of distance ranks:
  // float sqrt is correctly rounded, so d_e > d_t·(1 + 1e-5) forces
  // fl(sqrt(d_e)) > fl(sqrt(d_t)) strictly (the ratio exceeds any rounding
  // collision, and it degenerates safely at d_t = 0 where the condition
  // becomes d_e > 0 ⇒ sqrt(d_e) > 0).
  constexpr double kSqrtGuard = 1e-5;

  const double t_final = static_cast<double>(target_final);
  const double t_pre = static_cast<double>(target_pre);
  int rank = 0;
  uint64_t rescored = 0;
  for (size_t e = 0; e < n; ++e) {
    const EntityId id = static_cast<EntityId>(e);
    if (id == target) {
      // φ(target) >= φ(target): the target always counts itself (and the
      // non-finite case where it would not was excluded above).
      ++rank;
      continue;
    }
    if (filtered_out != nullptr && filtered_out->count(id)) continue;
    bool counts;
    if (dot_kernel) {
      double c = approx[e];
      double w = err[e];
      if (!sweep->bias.empty()) {
        c += static_cast<double>(sweep->bias[e]);
        w += kUlp * (std::fabs(c) + err[e]);
      }
      if (c - w >= t_final) {
        counts = true;
      } else if (c + w < t_final) {
        counts = false;
      } else {
        float s = simd::Dot(table->Row(e), query);
        if (!sweep->bias.empty()) s += sweep->bias[e];
        counts = s >= target_final;
        ++rescored;
      }
    } else {
      if (approx[e] + err[e] <= t_pre) {
        // d_e <= d_t and float sqrt is monotone: -sqrt(d_e) >= -sqrt(d_t).
        counts = true;
      } else if (approx[e] - err[e] > t_pre * (1.0 + kSqrtGuard)) {
        counts = false;
      } else {
        const float d = simd::SquaredDistance(table->Row(e), query);
        counts = -std::sqrt(d) >= target_final;
        ++rescored;
      }
    }
    if (counts) ++rank;
  }
  qm.sweeps.Increment(1);
  qm.rescored.Increment(rescored);
  return rank;
}

}  // namespace

void SetDefaultQuantizedShortlist(bool on) {
  g_default_quantized_shortlist.store(on, std::memory_order_relaxed);
}

bool DefaultQuantizedShortlist() {
  return g_default_quantized_shortlist.load(std::memory_order_relaxed);
}

int RankFromScores(std::span<const float> scores, EntityId target,
                   const std::unordered_set<EntityId>* filtered_out) {
  KELPIE_CHECK(target >= 0 && static_cast<size_t>(target) < scores.size());
  const float target_score = scores[static_cast<size_t>(target)];
  int rank = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    EntityId id = static_cast<EntityId>(e);
    if (id != target && filtered_out != nullptr && filtered_out->count(id)) {
      continue;
    }
    if (scores[e] >= target_score) {
      ++rank;
    }
  }
  return rank;
}

int FilteredTailRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact, const RankingOptions& options) {
  QuantMetrics qm = ResolveQuantMetrics();
  const std::unordered_set<EntityId>* filtered =
      &dataset.KnownTails(fact.head, fact.relation);
  if (options.quantized_shortlist) {
    std::optional<int> rank = QuantRank(
        model,
        model.TailSweepWithHeadVec(model.EntityEmbedding(fact.head),
                                   fact.relation),
        fact.tail, filtered, qm);
    if (rank.has_value()) return *rank;
    qm.fallbacks.Increment(1);
  }
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllTails(fact.head, fact.relation, scores);
  return RankFromScores(scores, fact.tail, filtered);
}

int FilteredTailRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact) {
  return FilteredTailRank(model, dataset, fact,
                          RankingOptions{DefaultQuantizedShortlist()});
}

int FilteredHeadRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact, const RankingOptions& options) {
  QuantMetrics qm = ResolveQuantMetrics();
  const std::unordered_set<EntityId>* filtered =
      &dataset.KnownHeads(fact.relation, fact.tail);
  if (options.quantized_shortlist) {
    std::optional<int> rank = QuantRank(
        model,
        model.HeadSweepWithTailVec(fact.relation,
                                   model.EntityEmbedding(fact.tail)),
        fact.head, filtered, qm);
    if (rank.has_value()) return *rank;
    qm.fallbacks.Increment(1);
  }
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllHeads(fact.relation, fact.tail, scores);
  return RankFromScores(scores, fact.head, filtered);
}

int FilteredHeadRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact) {
  return FilteredHeadRank(model, dataset, fact,
                          RankingOptions{DefaultQuantizedShortlist()});
}

int FilteredTailRankWithHeadVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId head_entity,
                                std::span<const float> head_vec,
                                RelationId relation, EntityId target_tail,
                                const RankingOptions& options) {
  QuantMetrics qm = ResolveQuantMetrics();
  const std::unordered_set<EntityId>* filtered =
      &dataset.KnownTails(head_entity, relation);
  if (options.quantized_shortlist) {
    std::optional<int> rank =
        QuantRank(model, model.TailSweepWithHeadVec(head_vec, relation),
                  target_tail, filtered, qm);
    if (rank.has_value()) return *rank;
    qm.fallbacks.Increment(1);
  }
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllTailsWithHeadVec(head_vec, relation, scores);
  return RankFromScores(scores, target_tail, filtered);
}

int FilteredTailRankWithHeadVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId head_entity,
                                std::span<const float> head_vec,
                                RelationId relation, EntityId target_tail) {
  return FilteredTailRankWithHeadVec(
      model, dataset, head_entity, head_vec, relation, target_tail,
      RankingOptions{DefaultQuantizedShortlist()});
}

int FilteredHeadRankWithTailVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId tail_entity,
                                std::span<const float> tail_vec,
                                RelationId relation, EntityId target_head,
                                const RankingOptions& options) {
  QuantMetrics qm = ResolveQuantMetrics();
  const std::unordered_set<EntityId>* filtered =
      &dataset.KnownHeads(relation, tail_entity);
  if (options.quantized_shortlist) {
    std::optional<int> rank =
        QuantRank(model, model.HeadSweepWithTailVec(relation, tail_vec),
                  target_head, filtered, qm);
    if (rank.has_value()) return *rank;
    qm.fallbacks.Increment(1);
  }
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllHeadsWithTailVec(relation, tail_vec, scores);
  return RankFromScores(scores, target_head, filtered);
}

int FilteredHeadRankWithTailVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId tail_entity,
                                std::span<const float> tail_vec,
                                RelationId relation, EntityId target_head) {
  return FilteredHeadRankWithTailVec(
      model, dataset, tail_entity, tail_vec, relation, target_head,
      RankingOptions{DefaultQuantizedShortlist()});
}

int FilteredRank(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& fact, PredictionTarget target,
                 const RankingOptions& options) {
  return target == PredictionTarget::kTail
             ? FilteredTailRank(model, dataset, fact, options)
             : FilteredHeadRank(model, dataset, fact, options);
}

int FilteredRank(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& fact, PredictionTarget target) {
  return FilteredRank(model, dataset, fact, target,
                      RankingOptions{DefaultQuantizedShortlist()});
}

}  // namespace kelpie
