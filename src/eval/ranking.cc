#include "eval/ranking.h"

#include <vector>

#include "common/logging.h"

namespace kelpie {

namespace {

/// Per-thread score workspace for the all-candidate sweeps. The filtered
/// ranks are recomputed once per candidate per post-training in the
/// relevance engine; reusing the buffer removes a num_entities-sized
/// allocation from every call.
std::span<float> ScoreScratch(size_t n) {
  thread_local std::vector<float> scratch;
  scratch.resize(n);
  return scratch;
}

}  // namespace

int RankFromScores(std::span<const float> scores, EntityId target,
                   const std::unordered_set<EntityId>* filtered_out) {
  KELPIE_CHECK(target >= 0 && static_cast<size_t>(target) < scores.size());
  const float target_score = scores[static_cast<size_t>(target)];
  int rank = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    EntityId id = static_cast<EntityId>(e);
    if (id != target && filtered_out != nullptr && filtered_out->count(id)) {
      continue;
    }
    if (scores[e] >= target_score) {
      ++rank;
    }
  }
  return rank;
}

int FilteredTailRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact) {
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllTails(fact.head, fact.relation, scores);
  return RankFromScores(scores, fact.tail,
                        &dataset.KnownTails(fact.head, fact.relation));
}

int FilteredHeadRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact) {
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllHeads(fact.relation, fact.tail, scores);
  return RankFromScores(scores, fact.head,
                        &dataset.KnownHeads(fact.relation, fact.tail));
}

int FilteredTailRankWithHeadVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId head_entity,
                                std::span<const float> head_vec,
                                RelationId relation, EntityId target_tail) {
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllTailsWithHeadVec(head_vec, relation, scores);
  return RankFromScores(scores, target_tail,
                        &dataset.KnownTails(head_entity, relation));
}

int FilteredHeadRankWithTailVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId tail_entity,
                                std::span<const float> tail_vec,
                                RelationId relation, EntityId target_head) {
  std::span<float> scores = ScoreScratch(model.num_entities());
  model.ScoreAllHeadsWithTailVec(relation, tail_vec, scores);
  return RankFromScores(scores, target_head,
                        &dataset.KnownHeads(relation, tail_entity));
}

int FilteredRank(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& fact, PredictionTarget target) {
  return target == PredictionTarget::kTail
             ? FilteredTailRank(model, dataset, fact)
             : FilteredHeadRank(model, dataset, fact);
}

}  // namespace kelpie
