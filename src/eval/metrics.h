#ifndef KELPIE_EVAL_METRICS_H_
#define KELPIE_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace kelpie {

/// Accumulates ranks into the paper's aggregate metrics: Hits@K
/// (Equation 3) and Mean Reciprocal Rank (Equation 4). Both lie in [0, 1];
/// higher is better.
class MetricsAccumulator {
 public:
  /// Records one (1-based) rank.
  void AddRank(int rank) { ranks_.push_back(rank); }

  size_t count() const { return ranks_.size(); }

  /// Fraction of ranks <= k.
  double HitsAt(int k) const;

  /// Mean of 1/rank.
  double Mrr() const;

  /// Arithmetic mean rank.
  double MeanRank() const;

  const std::vector<int>& ranks() const { return ranks_; }

 private:
  std::vector<int> ranks_;
};

/// A (H@1, MRR) pair — the two columns every results table reports.
struct LpMetrics {
  double hits_at_1 = 0.0;
  double mrr = 0.0;
};

}  // namespace kelpie

#endif  // KELPIE_EVAL_METRICS_H_
