#include "eval/metrics.h"

namespace kelpie {

double MetricsAccumulator::HitsAt(int k) const {
  if (ranks_.empty()) return 0.0;
  size_t hits = 0;
  for (int r : ranks_) {
    if (r <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks_.size());
}

double MetricsAccumulator::Mrr() const {
  if (ranks_.empty()) return 0.0;
  double acc = 0.0;
  for (int r : ranks_) {
    acc += 1.0 / static_cast<double>(r);
  }
  return acc / static_cast<double>(ranks_.size());
}

double MetricsAccumulator::MeanRank() const {
  if (ranks_.empty()) return 0.0;
  double acc = 0.0;
  for (int r : ranks_) {
    acc += static_cast<double>(r);
  }
  return acc / static_cast<double>(ranks_.size());
}

}  // namespace kelpie
