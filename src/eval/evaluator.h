#ifndef KELPIE_EVAL_EVALUATOR_H_
#define KELPIE_EVAL_EVALUATOR_H_

#include <vector>

#include "eval/metrics.h"
#include "eval/ranking.h"

namespace kelpie {

/// Options for a full evaluation pass.
struct EvalOptions {
  /// Evaluate head predictions in addition to tail predictions (the
  /// standard protocol averages both directions). Head ranking is the
  /// expensive direction for ConvE; single-direction evaluation is used by
  /// the explanation pipeline, which only measures the predicted side.
  bool include_heads = true;
  /// Worker threads for ranking. Every fact is ranked independently
  /// against the immutable model, so parallel evaluation is bit-identical
  /// to sequential (ranks are accumulated in fact order regardless of
  /// completion order). 1 = sequential.
  size_t num_threads = 1;
  /// Serve each rank through the certified int8 shortlist (byte-identical
  /// results; see RankingOptions::quantized_shortlist). Defaults to the
  /// process-wide setting so CLI-constructed options pick up
  /// --quant-shortlist automatically.
  bool quantized_shortlist = DefaultQuantizedShortlist();
};

/// Result of evaluating a model over a set of facts.
struct EvalResult {
  MetricsAccumulator tail_ranks;
  MetricsAccumulator head_ranks;

  /// Combined H@1 over both directions (or tails only when heads were
  /// skipped).
  double HitsAt1() const;
  /// Combined MRR.
  double Mrr() const;
  double HitsAt(int k) const;
};

/// Runs the paper's evaluation protocol (Section 2.1): for each fact, rank
/// the target entity against all entities in the filtered setting.
EvalResult Evaluate(const LinkPredictionModel& model, const Dataset& dataset,
                    const std::vector<Triple>& facts,
                    const EvalOptions& options = {});

/// Evaluates over dataset.test().
EvalResult EvaluateTest(const LinkPredictionModel& model,
                        const Dataset& dataset,
                        const EvalOptions& options = {});

}  // namespace kelpie

#endif  // KELPIE_EVAL_EVALUATOR_H_
