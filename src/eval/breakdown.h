#ifndef KELPIE_EVAL_BREAKDOWN_H_
#define KELPIE_EVAL_BREAKDOWN_H_

#include <string>
#include <vector>

#include "eval/evaluator.h"

namespace kelpie {

/// Per-relation slice of an evaluation — the standard diagnostic for
/// understanding *which* relations a model has learned (e.g. TransE's
/// WN18RR collapse is entirely concentrated on symmetric relations; the
/// YAGO3-10 bias shows up as suspiciously strong born_in numbers).
struct RelationMetrics {
  RelationId relation = kNoRelation;
  size_t num_facts = 0;
  double hits_at_1 = 0.0;
  double mrr = 0.0;
};

/// Evaluates `facts` per relation (filtered setting, tail direction by
/// default, both directions when `include_heads`). Rows are sorted by
/// descending fact count, ties by relation id.
std::vector<RelationMetrics> EvaluatePerRelation(
    const LinkPredictionModel& model, const Dataset& dataset,
    const std::vector<Triple>& facts, bool include_heads = false);

/// Text table of a per-relation breakdown.
std::string FormatBreakdown(const std::vector<RelationMetrics>& rows,
                            const Dataset& dataset);

}  // namespace kelpie

#endif  // KELPIE_EVAL_BREAKDOWN_H_
