#include "eval/breakdown.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "eval/ranking.h"

namespace kelpie {

std::vector<RelationMetrics> EvaluatePerRelation(
    const LinkPredictionModel& model, const Dataset& dataset,
    const std::vector<Triple>& facts, bool include_heads) {
  std::map<RelationId, MetricsAccumulator> per_relation;
  for (const Triple& fact : facts) {
    MetricsAccumulator& acc = per_relation[fact.relation];
    acc.AddRank(FilteredTailRank(model, dataset, fact));
    if (include_heads) {
      acc.AddRank(FilteredHeadRank(model, dataset, fact));
    }
  }
  std::vector<RelationMetrics> rows;
  rows.reserve(per_relation.size());
  for (const auto& [relation, acc] : per_relation) {
    RelationMetrics row;
    row.relation = relation;
    row.num_facts = include_heads ? acc.count() / 2 : acc.count();
    row.hits_at_1 = acc.HitsAt(1);
    row.mrr = acc.Mrr();
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const RelationMetrics& a, const RelationMetrics& b) {
              if (a.num_facts != b.num_facts) {
                return a.num_facts > b.num_facts;
              }
              return a.relation < b.relation;
            });
  return rows;
}

std::string FormatBreakdown(const std::vector<RelationMetrics>& rows,
                            const Dataset& dataset) {
  std::string out;
  for (const RelationMetrics& row : rows) {
    out += "  ";
    std::string name = dataset.relations().NameOf(row.relation);
    name.resize(std::max<size_t>(name.size(), 24), ' ');
    out += name;
    out += "  n=" + std::to_string(row.num_facts);
    out += "  H@1=" + FormatDouble(row.hits_at_1, 3);
    out += "  MRR=" + FormatDouble(row.mrr, 3);
    out += "\n";
  }
  return out;
}

}  // namespace kelpie
