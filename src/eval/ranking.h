#ifndef KELPIE_EVAL_RANKING_H_
#define KELPIE_EVAL_RANKING_H_

#include <span>
#include <unordered_set>

#include "kgraph/dataset.h"
#include "kgraph/triple.h"
#include "models/model.h"

namespace kelpie {

/// Rank of `target` within `scores` following the paper's Equation (2):
/// rank = |{e : φ(e) >= φ(target)}|, so the best possible rank is 1 and
/// ties count against the target. When `filtered_out` is non-null, entities
/// it contains (other than the target itself) are skipped — the paper's
/// filtered setting.
int RankFromScores(std::span<const float> scores, EntityId target,
                   const std::unordered_set<EntityId>* filtered_out);

/// Options for the filtered-rank computations.
struct RankingOptions {
  /// Serve the rank through the certified int8 candidate sweep, exactly
  /// re-scoring only the candidates whose quantization-error interval
  /// straddles the target's score (DESIGN.md §15). The result is
  /// byte-identical to the exact sweep by construction; models that cannot
  /// expose a closed-form sweep (CandidateSweep) silently fall back.
  bool quantized_shortlist = false;
};

/// Process-wide default consulted by the option-less overloads below.
/// Set once at startup (kelpie_cli's --quant-shortlist); because the
/// quantized path is byte-identical, flipping it never changes results,
/// only speed.
void SetDefaultQuantizedShortlist(bool on);
bool DefaultQuantizedShortlist();

/// Filtered tail rank of `fact` under `model`: the rank of fact.tail among
/// all candidate tails of <fact.head, fact.relation, ?>.
int FilteredTailRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact);
int FilteredTailRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact, const RankingOptions& options);

/// Filtered head rank of `fact`.
int FilteredHeadRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact);
int FilteredHeadRank(const LinkPredictionModel& model, const Dataset& dataset,
                     const Triple& fact, const RankingOptions& options);

/// Filtered tail rank where the head embedding is `head_vec` standing in
/// for entity `head_entity` (mimic evaluation). Filtering still uses the
/// known tails of (head_entity, relation).
int FilteredTailRankWithHeadVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId head_entity,
                                std::span<const float> head_vec,
                                RelationId relation, EntityId target_tail);
int FilteredTailRankWithHeadVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId head_entity,
                                std::span<const float> head_vec,
                                RelationId relation, EntityId target_tail,
                                const RankingOptions& options);

/// Filtered head rank with an override tail vector (mimic evaluation).
int FilteredHeadRankWithTailVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId tail_entity,
                                std::span<const float> tail_vec,
                                RelationId relation, EntityId target_head);
int FilteredHeadRankWithTailVec(const LinkPredictionModel& model,
                                const Dataset& dataset, EntityId tail_entity,
                                std::span<const float> tail_vec,
                                RelationId relation, EntityId target_head,
                                const RankingOptions& options);

/// The rank on the predicted side of `fact`: tail rank when `target` is
/// kTail, head rank otherwise.
int FilteredRank(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& fact, PredictionTarget target);
int FilteredRank(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& fact, PredictionTarget target,
                 const RankingOptions& options);

}  // namespace kelpie

#endif  // KELPIE_EVAL_RANKING_H_
