#include "eval/evaluator.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace kelpie {

namespace {

/// Commits one evaluation's metrics. The rank counter is deterministic
/// (ranks are accumulated in fact order on every path); the timing series
/// are wall-clock class and masked in deterministic snapshots.
void CommitEvalMetrics(size_t ranks, double seconds) {
  metrics::Registry& reg = metrics::Registry::Global();
  reg.GetCounter("kelpie_eval_ranks_total", {},
                 metrics::Determinism::kDeterministic,
                 "Filtered ranks computed over evaluation facts.")
      .Increment(ranks);
  reg.GetHistogram("kelpie_eval_seconds",
                   metrics::ExponentialBuckets(0.001, 4.0, 12), {},
                   metrics::Determinism::kWallClock,
                   "Wall-clock time per Evaluate() call.")
      .Observe(seconds);
  reg.GetGauge("kelpie_eval_ranks_per_second", {},
               metrics::Determinism::kWallClock,
               "Ranking throughput of the last Evaluate() call.")
      .Set(seconds > 0.0 ? static_cast<double>(ranks) / seconds : 0.0);
}

}  // namespace

double EvalResult::HitsAt1() const { return HitsAt(1); }

double EvalResult::HitsAt(int k) const {
  const size_t n = tail_ranks.count() + head_ranks.count();
  if (n == 0) return 0.0;
  double hits = tail_ranks.HitsAt(k) * static_cast<double>(tail_ranks.count()) +
                head_ranks.HitsAt(k) * static_cast<double>(head_ranks.count());
  return hits / static_cast<double>(n);
}

double EvalResult::Mrr() const {
  const size_t n = tail_ranks.count() + head_ranks.count();
  if (n == 0) return 0.0;
  double acc = tail_ranks.Mrr() * static_cast<double>(tail_ranks.count()) +
               head_ranks.Mrr() * static_cast<double>(head_ranks.count());
  return acc / static_cast<double>(n);
}

namespace {

EvalResult EvaluateImpl(const LinkPredictionModel& model,
                        const Dataset& dataset,
                        const std::vector<Triple>& facts,
                        const EvalOptions& options) {
  EvalResult result;
  const RankingOptions ranking{options.quantized_shortlist};
  if (options.num_threads <= 1 || facts.size() < 2) {
    for (const Triple& fact : facts) {
      result.tail_ranks.AddRank(
          FilteredTailRank(model, dataset, fact, ranking));
      if (options.include_heads) {
        result.head_ranks.AddRank(
            FilteredHeadRank(model, dataset, fact, ranking));
      }
    }
    return result;
  }
  // Parallel path: rank into per-fact slots, then accumulate in fact order
  // so the result is identical to the sequential path.
  std::vector<int> tail_ranks(facts.size());
  std::vector<int> head_ranks(options.include_heads ? facts.size() : 0);
  ThreadPool pool(options.num_threads);
  ParallelFor(pool, facts.size(), [&](size_t i) {
    tail_ranks[i] = FilteredTailRank(model, dataset, facts[i], ranking);
    if (options.include_heads) {
      head_ranks[i] = FilteredHeadRank(model, dataset, facts[i], ranking);
    }
  });
  for (size_t i = 0; i < facts.size(); ++i) {
    result.tail_ranks.AddRank(tail_ranks[i]);
    if (options.include_heads) {
      result.head_ranks.AddRank(head_ranks[i]);
    }
  }
  return result;
}

}  // namespace

EvalResult Evaluate(const LinkPredictionModel& model, const Dataset& dataset,
                    const std::vector<Triple>& facts,
                    const EvalOptions& options) {
  trace::Span eval_span("eval");
  Stopwatch timer;
  EvalResult result = EvaluateImpl(model, dataset, facts, options);
  CommitEvalMetrics(result.tail_ranks.count() + result.head_ranks.count(),
                    timer.ElapsedSeconds());
  return result;
}

EvalResult EvaluateTest(const LinkPredictionModel& model,
                        const Dataset& dataset, const EvalOptions& options) {
  return Evaluate(model, dataset, dataset.test(), options);
}

}  // namespace kelpie
