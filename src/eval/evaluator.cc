#include "eval/evaluator.h"

#include "common/thread_pool.h"

namespace kelpie {

double EvalResult::HitsAt1() const { return HitsAt(1); }

double EvalResult::HitsAt(int k) const {
  const size_t n = tail_ranks.count() + head_ranks.count();
  if (n == 0) return 0.0;
  double hits = tail_ranks.HitsAt(k) * static_cast<double>(tail_ranks.count()) +
                head_ranks.HitsAt(k) * static_cast<double>(head_ranks.count());
  return hits / static_cast<double>(n);
}

double EvalResult::Mrr() const {
  const size_t n = tail_ranks.count() + head_ranks.count();
  if (n == 0) return 0.0;
  double acc = tail_ranks.Mrr() * static_cast<double>(tail_ranks.count()) +
               head_ranks.Mrr() * static_cast<double>(head_ranks.count());
  return acc / static_cast<double>(n);
}

EvalResult Evaluate(const LinkPredictionModel& model, const Dataset& dataset,
                    const std::vector<Triple>& facts,
                    const EvalOptions& options) {
  EvalResult result;
  if (options.num_threads <= 1 || facts.size() < 2) {
    for (const Triple& fact : facts) {
      result.tail_ranks.AddRank(FilteredTailRank(model, dataset, fact));
      if (options.include_heads) {
        result.head_ranks.AddRank(FilteredHeadRank(model, dataset, fact));
      }
    }
    return result;
  }
  // Parallel path: rank into per-fact slots, then accumulate in fact order
  // so the result is identical to the sequential path.
  std::vector<int> tail_ranks(facts.size());
  std::vector<int> head_ranks(options.include_heads ? facts.size() : 0);
  ThreadPool pool(options.num_threads);
  ParallelFor(pool, facts.size(), [&](size_t i) {
    tail_ranks[i] = FilteredTailRank(model, dataset, facts[i]);
    if (options.include_heads) {
      head_ranks[i] = FilteredHeadRank(model, dataset, facts[i]);
    }
  });
  for (size_t i = 0; i < facts.size(); ++i) {
    result.tail_ranks.AddRank(tail_ranks[i]);
    if (options.include_heads) {
      result.head_ranks.AddRank(head_ranks[i]);
    }
  }
  return result;
}

EvalResult EvaluateTest(const LinkPredictionModel& model,
                        const Dataset& dataset, const EvalOptions& options) {
  return Evaluate(model, dataset, dataset.test(), options);
}

}  // namespace kelpie
