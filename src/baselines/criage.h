#ifndef KELPIE_BASELINES_CRIAGE_H_
#define KELPIE_BASELINES_CRIAGE_H_

#include "baselines/explainer.h"
#include "models/model.h"

namespace kelpie {

/// The Criage baseline (Pezeshkpour et al., NAACL 2019), re-implemented
/// following its published first-order influence-function formulation.
///
/// Criage estimates how removing (or adding) a training fact changes the
/// score of the prediction by a first-order Taylor approximation of the
/// retrained embedding: the influence of fact f on prediction p through a
/// shared entity e is proportional to the alignment of the score gradients,
/// ∇_e φ(p) · ∇_e φ(f), with the inverse Hessian approximated by a scaled
/// identity (the simplification that keeps it tractable).
///
/// Faithful to the original's structural limitation (paper Section 3.2),
/// only candidate facts whose *tail* is the prediction's head h or tail t
/// are considered — the main reason for its weak end-to-end results.
/// Like DP, it yields single-fact explanations.
class CriageExplainer final : public Explainer {
 public:
  CriageExplainer(const LinkPredictionModel& model, const Dataset& dataset)
      : model_(model), dataset_(dataset) {}

  std::string_view Name() const override { return "Criage"; }

  Explanation ExplainNecessary(const Triple& prediction,
                               PredictionTarget target) override;
  Explanation ExplainSufficient(
      const Triple& prediction, PredictionTarget target,
      const std::vector<EntityId>& conversion_set) override;

 private:
  /// Candidate facts per Criage's restriction: training facts of the
  /// source entity whose tail is the prediction's head or tail.
  std::vector<Triple> CandidateFacts(const Triple& prediction,
                                     PredictionTarget target) const;

  /// Influence of `fact` on `prediction` through their shared entity
  /// (gradient-alignment approximation).
  double Influence(const Triple& prediction, const Triple& fact,
                   EntityId shared) const;

  const LinkPredictionModel& model_;
  const Dataset& dataset_;
};

}  // namespace kelpie

#endif  // KELPIE_BASELINES_CRIAGE_H_
