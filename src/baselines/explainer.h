#ifndef KELPIE_BASELINES_EXPLAINER_H_
#define KELPIE_BASELINES_EXPLAINER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/explanation.h"
#include "core/kelpie.h"

namespace kelpie {

/// Uniform interface over every explanation framework the experiments
/// compare: Kelpie, its single-fact variant K1, Data Poisoning, and Criage.
/// The end-to-end pipeline (src/xp) drives all of them identically.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Framework display name as it appears in the paper's tables.
  virtual std::string_view Name() const = 0;

  /// Extracts a necessary explanation of `prediction`.
  virtual Explanation ExplainNecessary(const Triple& prediction,
                                       PredictionTarget target) = 0;

  /// Extracts a sufficient explanation of `prediction` against the given
  /// conversion set (shared across frameworks for fair comparison).
  virtual Explanation ExplainSufficient(
      const Triple& prediction, PredictionTarget target,
      const std::vector<EntityId>& conversion_set) = 0;

  /// Per-extraction limits applied to every subsequent Explain* call (work
  /// budget, timeout, deadline, cancellation). Frameworks without bounded
  /// extraction ignore them — their per-prediction cost is a handful of
  /// gradient computations, not a candidate search.
  virtual void SetExtractionLimits(const ExtractionLimits& limits) {
    (void)limits;
  }
};

/// Kelpie (or K1, with `k1_only`) behind the Explainer interface.
class KelpieExplainer final : public Explainer {
 public:
  KelpieExplainer(const LinkPredictionModel& model, const Dataset& dataset,
                  KelpieOptions options, bool k1_only = false)
      : k1_only_(k1_only) {
    options.builder.k1_only = k1_only;
    kelpie_ = std::make_unique<Kelpie>(model, dataset, options);
  }

  std::string_view Name() const override {
    return k1_only_ ? "K1" : "Kelpie";
  }

  Explanation ExplainNecessary(const Triple& prediction,
                               PredictionTarget target) override {
    return kelpie_->ExplainNecessary(prediction, target, nullptr, limits_);
  }

  Explanation ExplainSufficient(
      const Triple& prediction, PredictionTarget target,
      const std::vector<EntityId>& conversion_set) override {
    return kelpie_->ExplainSufficientWithSet(prediction, target,
                                             conversion_set, nullptr,
                                             limits_);
  }

  void SetExtractionLimits(const ExtractionLimits& limits) override {
    limits_ = limits;
  }

  Kelpie& kelpie() { return *kelpie_; }

 private:
  bool k1_only_;
  std::unique_ptr<Kelpie> kelpie_;
  ExtractionLimits limits_;
};

}  // namespace kelpie

#endif  // KELPIE_BASELINES_EXPLAINER_H_
