#include "baselines/criage.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "math/vec.h"

namespace kelpie {

std::vector<Triple> CriageExplainer::CandidateFacts(
    const Triple& prediction, PredictionTarget target) const {
  const EntityId source = SourceEntity(prediction, target);
  std::vector<Triple> all = dataset_.train_graph().FactsOf(source);
  std::vector<Triple> out;
  for (const Triple& fact : all) {
    if (fact == prediction) continue;
    // Criage's structural restriction: the candidate's tail must be the
    // prediction's head or tail.
    if (fact.tail == prediction.head || fact.tail == prediction.tail) {
      out.push_back(fact);
    }
  }
  return out;
}

double CriageExplainer::Influence(const Triple& prediction,
                                  const Triple& fact,
                                  EntityId shared) const {
  KELPIE_CHECK(prediction.Mentions(shared));
  KELPIE_CHECK(fact.Mentions(shared));
  std::vector<float> grad_pred = prediction.head == shared
                                     ? model_.ScoreGradWrtHead(prediction)
                                     : model_.ScoreGradWrtTail(prediction);
  std::vector<float> grad_fact = fact.head == shared
                                     ? model_.ScoreGradWrtHead(fact)
                                     : model_.ScoreGradWrtTail(fact);
  // σ'(φ(f)) factor from the original derivation: a fact the model already
  // scores confidently contributes a smaller retraining shift.
  const float s = Sigmoid(model_.Score(fact));
  const float sigma_prime = s * (1.0f - s);
  return static_cast<double>(Dot(grad_pred, grad_fact)) *
         static_cast<double>(sigma_prime);
}

Explanation CriageExplainer::ExplainNecessary(const Triple& prediction,
                                              PredictionTarget target) {
  Stopwatch timer;
  Explanation result;
  result.kind = ExplanationKind::kNecessary;
  const EntityId source = SourceEntity(prediction, target);

  std::vector<Triple> candidates = CandidateFacts(prediction, target);
  if (candidates.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  double best = -1e30;
  Triple best_fact = candidates.front();
  for (const Triple& fact : candidates) {
    // The entity shared between fact and prediction through which the
    // influence flows: the source entity.
    double influence = Influence(prediction, fact, source);
    if (influence > best) {
      best = influence;
      best_fact = fact;
    }
  }
  result.facts = {best_fact};
  result.relevance = best;
  result.accepted = true;
  result.visited_candidates = candidates.size();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Explanation CriageExplainer::ExplainSufficient(
    const Triple& prediction, PredictionTarget target,
    const std::vector<EntityId>& conversion_set) {
  Stopwatch timer;
  Explanation result;
  result.kind = ExplanationKind::kSufficient;
  const EntityId source = SourceEntity(prediction, target);

  std::vector<Triple> candidates = CandidateFacts(prediction, target);
  if (candidates.empty() || conversion_set.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  // Reprogrammed objective (paper Section 5.2): choose the fact that, if
  // added to the entity c to convert, would *improve* the score of
  // <c, r, t> the most — the influence computed on the transferred fact.
  std::vector<double> total(candidates.size(), 0.0);
  for (EntityId c : conversion_set) {
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      Triple transferred = TransferFact(candidates[i], source, c);
      total[i] += Influence(converted, transferred, c);
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (total[i] > total[best]) best = i;
  }
  result.facts = {candidates[best]};
  result.relevance = total[best] / static_cast<double>(conversion_set.size());
  result.accepted = true;
  result.visited_candidates = candidates.size() * conversion_set.size();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kelpie
