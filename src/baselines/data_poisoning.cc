#include "baselines/data_poisoning.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "math/vec.h"

namespace kelpie {

std::vector<Triple> DataPoisoningExplainer::AdversarialAdditions(
    const Triple& prediction, PredictionTarget target, size_t k) const {
  const EntityId source = SourceEntity(prediction, target);
  // Shift the source embedding in the direction that worsens the
  // prediction; a fake fact whose own score *improves* under that shift
  // pulls training in the poisoned direction.
  std::vector<float> grad = GradWrtEntity(prediction, source);
  std::vector<float> shifted(model_.EntityEmbedding(source).begin(),
                             model_.EntityEmbedding(source).end());
  Axpy(-options_.epsilon, grad, std::span<float>(shifted));

  struct Candidate {
    double improvement;
    Triple fact;
  };
  std::vector<Candidate> candidates;
  std::vector<float> original_scores(model_.num_entities());
  std::vector<float> shifted_scores(model_.num_entities());
  for (RelationId r = 0;
       r < static_cast<RelationId>(model_.num_relations()); ++r) {
    model_.ScoreAllTails(source, r, original_scores);
    model_.ScoreAllTailsWithHeadVec(shifted, r, shifted_scores);
    for (size_t e = 0; e < model_.num_entities(); ++e) {
      EntityId tail = static_cast<EntityId>(e);
      if (tail == source) continue;
      Triple fake(source, r, tail);
      if (fake == prediction) continue;
      if (dataset_.train_graph().Contains(fake)) continue;
      candidates.push_back(
          {static_cast<double>(shifted_scores[e] - original_scores[e]),
           fake});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.improvement != b.improvement) {
                return a.improvement > b.improvement;
              }
              return a.fact < b.fact;
            });
  std::vector<Triple> out;
  for (size_t i = 0; i < candidates.size() && i < k; ++i) {
    out.push_back(candidates[i].fact);
  }
  return out;
}

std::vector<float> DataPoisoningExplainer::GradWrtEntity(
    const Triple& fact, EntityId entity) const {
  KELPIE_CHECK(fact.Mentions(entity));
  if (fact.head == entity) {
    return model_.ScoreGradWrtHead(fact);
  }
  return model_.ScoreGradWrtTail(fact);
}

Explanation DataPoisoningExplainer::ExplainNecessary(
    const Triple& prediction, PredictionTarget target) {
  Stopwatch timer;
  Explanation result;
  result.kind = ExplanationKind::kNecessary;

  const EntityId source = SourceEntity(prediction, target);
  std::vector<Triple> facts = dataset_.train_graph().FactsOf(source);
  facts.erase(std::remove(facts.begin(), facts.end(), prediction),
              facts.end());
  if (facts.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Shift the source embedding against the prediction score's gradient:
  // the direction that worsens φ(prediction).
  std::vector<float> grad = GradWrtEntity(prediction, source);
  std::vector<float> shifted(model_.EntityEmbedding(source).begin(),
                             model_.EntityEmbedding(source).end());
  Axpy(-options_.epsilon, grad, std::span<float>(shifted));

  // The fact whose own score degrades the most under the shift is the one
  // most aligned with the prediction.
  double best_drop = -1e30;
  Triple best_fact = facts.front();
  for (const Triple& fact : facts) {
    const float original = model_.Score(fact);
    const float perturbed = model_.ScoreWithEntityVec(fact, source, shifted);
    const double drop = static_cast<double>(original - perturbed);
    if (drop > best_drop) {
      best_drop = drop;
      best_fact = fact;
    }
  }
  result.facts = {best_fact};
  result.relevance = best_drop;
  result.accepted = true;
  result.visited_candidates = facts.size();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Explanation DataPoisoningExplainer::ExplainSufficient(
    const Triple& prediction, PredictionTarget target,
    const std::vector<EntityId>& conversion_set) {
  Stopwatch timer;
  Explanation result;
  result.kind = ExplanationKind::kSufficient;

  const EntityId source = SourceEntity(prediction, target);
  std::vector<Triple> facts = dataset_.train_graph().FactsOf(source);
  facts.erase(std::remove(facts.begin(), facts.end(), prediction),
              facts.end());
  if (facts.empty() || conversion_set.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // For each entity c to convert, shift c's embedding in the direction that
  // improves φ(<c, r, t>) and vote for the transferred fact whose score
  // improves the most; the fact with the highest mean improvement wins.
  std::vector<double> total_improvement(facts.size(), 0.0);
  for (EntityId c : conversion_set) {
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    std::vector<float> grad = GradWrtEntity(converted, c);
    std::vector<float> shifted(model_.EntityEmbedding(c).begin(),
                               model_.EntityEmbedding(c).end());
    Axpy(+options_.epsilon, grad, std::span<float>(shifted));
    for (size_t i = 0; i < facts.size(); ++i) {
      Triple transferred = TransferFact(facts[i], source, c);
      const float original = model_.Score(transferred);
      const float perturbed =
          model_.ScoreWithEntityVec(transferred, c, shifted);
      total_improvement[i] += static_cast<double>(perturbed - original);
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < facts.size(); ++i) {
    if (total_improvement[i] > total_improvement[best]) best = i;
  }
  result.facts = {facts[best]};
  result.relevance =
      total_improvement[best] / static_cast<double>(conversion_set.size());
  result.accepted = true;
  result.visited_candidates = facts.size() * conversion_set.size();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kelpie
