#ifndef KELPIE_BASELINES_DATA_POISONING_H_
#define KELPIE_BASELINES_DATA_POISONING_H_

#include "baselines/explainer.h"
#include "models/model.h"

namespace kelpie {

/// Options of the Data Poisoning baseline.
struct DataPoisoningOptions {
  /// Magnitude ε of the embedding perturbation applied to the source
  /// entity's embedding along the score gradient.
  float epsilon = 0.1f;
};

/// The Data Poisoning baseline (Zhang et al., IJCAI 2019), re-implemented
/// from the published formulation as in the paper's Section 5.2.
///
/// Necessary mode: the source entity's embedding is shifted by
/// -ε·∂φ(h,r,t)/∂h (the direction that worsens the prediction); the
/// training fact of the source entity whose own score *degrades the most*
/// under the shifted embedding is the one presumed to work in the
/// prediction's favour, and is returned as the (single-fact) explanation.
///
/// Sufficient mode (the paper's symmetric adaptation): for each entity c to
/// convert, c's embedding is shifted by +ε·∂φ(c,r,t)/∂c (the direction that
/// improves the target prediction); each source-entity fact is transferred
/// to c and the fact whose score *improves the most* under the shift is
/// selected. Votes are aggregated over the conversion set.
class DataPoisoningExplainer final : public Explainer {
 public:
  DataPoisoningExplainer(const LinkPredictionModel& model,
                         const Dataset& dataset,
                         DataPoisoningOptions options = {})
      : model_(model), dataset_(dataset), options_(options) {}

  std::string_view Name() const override { return "DP"; }

  Explanation ExplainNecessary(const Triple& prediction,
                               PredictionTarget target) override;
  Explanation ExplainSufficient(
      const Triple& prediction, PredictionTarget target,
      const std::vector<EntityId>& conversion_set) override;

  /// The DP paper's symmetric *addition* attack (paper Section 3.2): the
  /// `k` fake facts featuring the source entity that, if added to G_train,
  /// are expected to worsen the prediction the most. Candidates are all
  /// <source, r', e> (and the shift direction mirrors the removal mode);
  /// facts already in training are skipped. Used for robustness studies,
  /// not for explanations.
  std::vector<Triple> AdversarialAdditions(const Triple& prediction,
                                           PredictionTarget target,
                                           size_t k) const;

 private:
  /// The score gradient w.r.t. the embedding of `entity` within `fact`.
  std::vector<float> GradWrtEntity(const Triple& fact, EntityId entity) const;

  const LinkPredictionModel& model_;
  const Dataset& dataset_;
  DataPoisoningOptions options_;
};

}  // namespace kelpie

#endif  // KELPIE_BASELINES_DATA_POISONING_H_
