#!/usr/bin/env bash
# serve-smoke: end-to-end check of the `kelpie serve` TCP service on a toy
# model (EXPERIMENTS.md, "serve-smoke").
#
#   1. Generates a small FB15k-237 sample and trains a TransE model.
#   2. Starts `kelpie serve` (ephemeral port, pool of 2) and drives it with
#      `kelpie serve-client` over two concurrent connections: ping, score,
#      necessary + sufficient explains, a deadline-shed score
#      ("shed_after":0), stats, then shutdown.
#   3. Byte-compares the served score/explain responses against the one-shot
#      `kelpie score --canonical` / `kelpie explain --canonical` output —
#      the serving determinism contract (DESIGN.md §12).
#   4. Asserts the shed request came back as DeadlineExceeded and that the
#      --metrics-out snapshot the server wrote on shutdown contains the
#      kelpie_serve_* families.
#
# Usage: tools/serve_smoke.sh [path/to/kelpie]
set -euo pipefail

KELPIE="${1:-build/tools/kelpie}"
WORK="$(mktemp -d /tmp/kelpie_serve_smoke.XXXXXX)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $1" >&2
  echo "--- serve log ---" >&2
  cat "$WORK/serve.log" >&2 || true
  exit 1
}

echo "== generate + train toy model"
"$KELPIE" generate --dataset FB15k-237 --scale 0.4 --seed 7 \
  --out "$WORK/data"
"$KELPIE" train --data "$WORK/data" --model TransE --seed 42 \
  --epochs 40 --dim 32 --out "$WORK/model.bin"

HEAD=Person_8
REL=nationality
TAIL=Country_4

echo "== start kelpie serve"
"$KELPIE" serve --data "$WORK/data" --model-file "$WORK/model.bin" \
  --port 0 --pool 2 --threads 2 \
  --metrics-out "$WORK/serve_metrics.json" > "$WORK/serve.log" &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serving on [^:]*:\([0-9]*\).*/\1/p' "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.2
done
[ -n "$PORT" ] || fail "server did not announce a port"
echo "   serving on port $PORT"

cat > "$WORK/requests.txt" <<EOF
{"id":1,"op":"ping"}
{"id":2,"op":"score","head":"$HEAD","relation":"$REL","tail":"$TAIL"}
{"id":3,"op":"explain","head":"$HEAD","relation":"$REL","tail":"$TAIL"}
{"id":4,"op":"explain","head":"$HEAD","relation":"$REL","tail":"$TAIL","sufficient":true}
{"id":5,"op":"score","head":"$HEAD","relation":"$REL","tail":"$TAIL","shed_after":0}
{"id":6,"op":"stats"}
EOF

echo "== drive with serve-client (2 concurrent connections)"
"$KELPIE" serve-client --port "$PORT" --connections 2 \
  --in "$WORK/requests.txt" > "$WORK/responses.txt"
cat "$WORK/responses.txt"

extract() { grep "^{\"id\":$1," "$WORK/responses.txt" > "$2" \
  || fail "no response for id $1"; }

echo "== byte-compare served responses against one-shot CLI output"
extract 2 "$WORK/served_score.txt"
"$KELPIE" score --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" \
  --canonical --id 2 > "$WORK/oneshot_score.txt"
diff -u "$WORK/oneshot_score.txt" "$WORK/served_score.txt" \
  || fail "served score differs from one-shot score"

extract 3 "$WORK/served_necessary.txt"
"$KELPIE" explain --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" \
  --canonical --id 3 > "$WORK/oneshot_necessary.txt"
diff -u "$WORK/oneshot_necessary.txt" "$WORK/served_necessary.txt" \
  || fail "served necessary explain differs from one-shot"

extract 4 "$WORK/served_sufficient.txt"
"$KELPIE" explain --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" --sufficient \
  --canonical --id 4 > "$WORK/oneshot_sufficient.txt"
diff -u "$WORK/oneshot_sufficient.txt" "$WORK/served_sufficient.txt" \
  || fail "served sufficient explain differs from one-shot"

echo "== quant-shortlist golden cell: one-shot output byte-identical with --quant-shortlist"
"$KELPIE" score --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" \
  --canonical --id 2 --quant-shortlist > "$WORK/quant_score.txt"
diff -u "$WORK/oneshot_score.txt" "$WORK/quant_score.txt" \
  || fail "score differs with --quant-shortlist"
"$KELPIE" explain --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" \
  --canonical --id 3 --quant-shortlist > "$WORK/quant_necessary.txt"
diff -u "$WORK/oneshot_necessary.txt" "$WORK/quant_necessary.txt" \
  || fail "necessary explain differs with --quant-shortlist"
"$KELPIE" explain --data "$WORK/data" --model-file "$WORK/model.bin" \
  --head "$HEAD" --relation "$REL" --tail "$TAIL" --sufficient \
  --canonical --id 4 --quant-shortlist > "$WORK/quant_sufficient.txt"
diff -u "$WORK/oneshot_sufficient.txt" "$WORK/quant_sufficient.txt" \
  || fail "sufficient explain differs with --quant-shortlist"

echo "== assert the shed_after:0 request was deadline-shed"
extract 5 "$WORK/served_shed.txt"
grep -q '"ok":false,"code":"DeadlineExceeded"' "$WORK/served_shed.txt" \
  || fail "shed request was not DeadlineExceeded: $(cat "$WORK/served_shed.txt")"

echo "== shutdown and check the metrics snapshot"
echo '{"id":99,"op":"shutdown"}' | \
  "$KELPIE" serve-client --port "$PORT" > /dev/null
wait "$SERVE_PID" || fail "server exited non-zero"
SERVE_PID=""
[ -s "$WORK/serve_metrics.json" ] || fail "no metrics snapshot written"
grep -q 'kelpie_serve_requests_total' "$WORK/serve_metrics.json" \
  || fail "metrics snapshot lacks kelpie_serve_requests_total"

# Keep the snapshot where CI can pick it up as an artifact.
if [ -n "${SERVE_SMOKE_METRICS_OUT:-}" ]; then
  cp "$WORK/serve_metrics.json" "$SERVE_SMOKE_METRICS_OUT"
fi

echo "== quant-shortlist golden cell: served responses byte-identical too"
"$KELPIE" serve --data "$WORK/data" --model-file "$WORK/model.bin" \
  --port 0 --pool 2 --threads 2 --quant-shortlist \
  > "$WORK/serve_quant.log" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serving on [^:]*:\([0-9]*\).*/\1/p' "$WORK/serve_quant.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "quant server exited during startup"
  sleep 0.2
done
[ -n "$PORT" ] || fail "quant server did not announce a port"
"$KELPIE" serve-client --port "$PORT" --connections 2 \
  --in "$WORK/requests.txt" > "$WORK/responses_quant.txt"
for id in 2 3 4; do
  grep "^{\"id\":$id," "$WORK/responses_quant.txt" > "$WORK/quant_served_$id.txt" \
    || fail "no quant-serve response for id $id"
  grep "^{\"id\":$id," "$WORK/responses.txt" > "$WORK/plain_served_$id.txt"
  diff -u "$WORK/plain_served_$id.txt" "$WORK/quant_served_$id.txt" \
    || fail "served response $id differs under --quant-shortlist"
done
echo '{"id":99,"op":"shutdown"}' | \
  "$KELPIE" serve-client --port "$PORT" > /dev/null
wait "$SERVE_PID" || fail "quant server exited non-zero"
SERVE_PID=""

echo "serve-smoke: OK"
