// kelpie — command-line interface to the library.
//
// Subcommands:
//   generate  --dataset FB15k --scale 0.55 --seed 7 --out DIR
//       Writes a synthetic benchmark stand-in as train/valid/test TSV.
//   train     --data DIR --model ComplEx --seed 42 --out model.bin
//       Trains a model on a TSV dataset and saves its parameters.
//   evaluate  --data DIR --model-file model.bin [--no-heads]
//       Filtered H@1 / H@10 / MRR over the test split.
//   explain   --data DIR --model-file model.bin
//             --head H --relation R --tail T [--sufficient] [--head-query]
//       Extracts a Kelpie explanation for one prediction.
//   audit     --data DIR --model-file model.bin --relation R [--limit N]
//       Explains correct test predictions of a relation and mines the
//       evidence patterns (bias audit).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/breakdown.h"
#include "eval/evaluator.h"
#include "kgraph/io.h"
#include "models/factory.h"
#include "models/model_store.h"
#include "xp/pattern_miner.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

/// Minimal --flag value parser: flags may appear in any order; every flag
/// takes a value except the boolean switches listed in kSwitches.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + key;
        return;
      }
      key = key.substr(2);
      if (IsSwitch(key)) {
        values_[key] = "1";
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      } else {
        error_ = "flag --" + key + " needs a value";
        return;
      }
    }
  }

  static bool IsSwitch(const std::string& key) {
    return key == "sufficient" || key == "head-query" || key == "no-heads" ||
           key == "per-relation";
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    try {
      return std::stod(Get(key));
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: flag --%s needs a number, got '%s'\n",
                   key.c_str(), Get(key).c_str());
      std::exit(1);
    }
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    if (!Has(key)) return fallback;
    try {
      return std::stoull(Get(key));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "error: flag --%s needs a non-negative integer, got '%s'\n",
                   key.c_str(), Get(key).c_str());
      std::exit(1);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Result<Dataset> LoadData(const Args& args) {
  if (!args.Has("data")) {
    return Status::InvalidArgument("--data DIR is required");
  }
  return LoadDatasetTsv("cli-dataset", args.Get("data"));
}

int CmdGenerate(const Args& args) {
  std::string name = args.Get("dataset", "FB15k-237");
  BenchmarkDataset which = BenchmarkDataset::kFb15k237;
  bool found = false;
  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    if (BenchmarkDatasetName(d) == name) {
      which = d;
      found = true;
    }
  }
  if (!found) return Fail("unknown dataset: " + name);
  if (!args.Has("out")) return Fail("--out DIR is required");
  Dataset dataset = MakeBenchmark(which, args.GetDouble("scale", 0.55),
                                  args.GetU64("seed", 7));
  Status status = SaveDatasetTsv(dataset, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  DatasetStats stats = ComputeStats(dataset);
  std::printf("wrote %s to %s: %zu entities, %zu relations, %zu/%zu/%zu "
              "train/valid/test facts\n",
              name.c_str(), args.Get("out").c_str(), stats.num_entities,
              stats.num_relations, stats.num_train, stats.num_valid,
              stats.num_test);
  return 0;
}

int CmdTrain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  Result<ModelKind> kind = ParseModelKind(args.Get("model", "ComplEx"));
  if (!kind.ok()) return Fail(kind.status().ToString());
  if (!args.Has("out")) return Fail("--out FILE is required");

  TrainConfig config = DefaultConfig(kind.value(), *dataset);
  if (args.Has("epochs")) config.epochs = args.GetU64("epochs", config.epochs);
  if (args.Has("dim")) config.dim = args.GetU64("dim", config.dim);
  auto model = CreateModel(kind.value(), *dataset, config);
  Rng rng(args.GetU64("seed", 42));
  std::printf("training %s on %zu facts (%zu epochs, dim %zu)...\n",
              args.Get("model", "ComplEx").c_str(), dataset->train().size(),
              config.epochs, config.dim);
  model->Train(*dataset, rng);
  Status status = SaveModel(*model, kind.value(), args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("saved to %s\n", args.Get("out").c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return Fail(model.status().ToString());
  EvalOptions options;
  options.include_heads = !args.Has("no-heads");
  options.num_threads = args.GetU64("threads", 1);
  EvalResult result = EvaluateTest(**model, *dataset, options);
  std::printf("%s on %zu test facts: H@1 %.3f  H@10 %.3f  MRR %.3f\n",
              std::string((*model)->Name()).c_str(),
              dataset->test().size(), result.HitsAt1(), result.HitsAt(10),
              result.Mrr());
  if (args.Has("per-relation")) {
    std::vector<RelationMetrics> rows = EvaluatePerRelation(
        **model, *dataset, dataset->test(), options.include_heads);
    std::printf("%s", FormatBreakdown(rows, *dataset).c_str());
  }
  return 0;
}

Result<Triple> ParsePredictionFlags(const Args& args, const Dataset& dataset) {
  int32_t h, r, t;
  KELPIE_ASSIGN_OR_RETURN(h, dataset.entities().Find(args.Get("head")));
  KELPIE_ASSIGN_OR_RETURN(r, dataset.relations().Find(args.Get("relation")));
  KELPIE_ASSIGN_OR_RETURN(t, dataset.entities().Find(args.Get("tail")));
  return Triple(h, r, t);
}

int CmdExplain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return Fail(model.status().ToString());
  Result<Triple> prediction = ParsePredictionFlags(args, *dataset);
  if (!prediction.ok()) return Fail(prediction.status().ToString());

  PredictionTarget target = args.Has("head-query")
                                ? PredictionTarget::kHead
                                : PredictionTarget::kTail;
  KelpieOptions options;
  options.num_threads = args.GetU64("threads", 1);
  Kelpie kelpie(**model, *dataset, options);
  Explanation x;
  if (args.Has("sufficient")) {
    std::vector<EntityId> converted;
    x = kelpie.ExplainSufficient(*prediction, target, &converted);
    std::printf("sufficient explanation (over %zu conversion entities):\n",
                converted.size());
  } else {
    x = kelpie.ExplainNecessary(*prediction, target);
    std::printf("necessary explanation:\n");
  }
  if (x.empty()) {
    std::printf("  (none found — the source entity has no usable facts)\n");
    return 0;
  }
  for (const Triple& fact : x.facts) {
    std::printf("  %s\n", dataset->TripleToString(fact).c_str());
  }
  std::printf("relevance %.2f, %s, %zu post-trainings, %.2fs\n",
              x.relevance, x.accepted ? "accepted" : "best-effort",
              x.post_trainings, x.seconds);
  return 0;
}

int CmdAudit(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return Fail(model.status().ToString());
  Result<int32_t> relation =
      dataset->relations().Find(args.Get("relation"));
  if (!relation.ok()) return Fail(relation.status().ToString());
  const size_t limit = args.GetU64("limit", 8);

  KelpieOptions options;
  options.num_threads = args.GetU64("threads", 1);
  Kelpie kelpie(**model, *dataset, options);
  PatternMiner miner;
  Rng rng(args.GetU64("seed", 7));
  size_t explained = 0;
  for (const Triple& t : dataset->test()) {
    if (explained >= limit) break;
    if (t.relation != relation.value()) continue;
    if (FilteredTailRank(**model, *dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        **model, *dataset, t, PredictionTarget::kTail, 5, rng);
    if (conversion_set.empty()) continue;
    Explanation x = kelpie.ExplainSufficientWithSet(
        t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    miner.Add(t, x);
    ++explained;
  }
  std::printf("%s", miner.Report(*dataset).c_str());
  std::vector<EvidencePattern> biases = miner.BiasCandidates(0.5);
  if (biases.empty()) {
    std::printf("no dominant foreign-relation evidence (no bias flagged)\n");
  } else {
    for (const EvidencePattern& b : biases) {
      std::printf("BIAS: '%s' predictions rely on '%s' evidence "
                  "(share %.0f%%)\n",
                  dataset->relations().NameOf(b.prediction_relation).c_str(),
                  dataset->relations().NameOf(b.evidence_relation).c_str(),
                  b.share * 100.0);
    }
  }
  return 0;
}

int Usage() {
  std::printf(
      "usage: kelpie <command> [flags]\n"
      "  generate --dataset NAME --scale S --seed N --out DIR\n"
      "  train    --data DIR --model NAME --seed N --out FILE "
      "[--epochs N] [--dim N]\n"
      "  evaluate --data DIR --model-file FILE [--no-heads] "
      "[--per-relation] [--threads N]\n"
      "  explain  --data DIR --model-file FILE --head H --relation R "
      "--tail T [--sufficient] [--head-query] [--threads N]\n"
      "  audit    --data DIR --model-file FILE --relation R [--limit N] "
      "[--threads N]\n"
      "models: TransE ComplEx ConvE DistMult RotatE\n"
      "datasets: FB15k FB15k-237 WN18 WN18RR YAGO3-10\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args(argc, argv);
  if (!args.error().empty()) return Fail(args.error());
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(args);
  if (command == "train") return CmdTrain(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "audit") return CmdAudit(args);
  return Usage();
}

}  // namespace
}  // namespace kelpie

int main(int argc, char** argv) { return kelpie::Run(argc, argv); }
