// kelpie — command-line interface to the library.
//
// Subcommands:
//   generate  --dataset FB15k --scale 0.55 --seed 7 --out DIR
//       Writes a synthetic benchmark stand-in as train/valid/test TSV.
//   train     --data DIR --model ComplEx --seed 42 --out model.bin
//       Trains a model on a TSV dataset and saves its parameters.
//   evaluate  --data DIR --model-file model.bin [--no-heads]
//       Filtered H@1 / H@10 / MRR over the test split.
//   explain   --data DIR --model-file model.bin
//             --head H --relation R --tail T [--sufficient] [--head-query]
//       Extracts a Kelpie explanation for one prediction.
//   audit     --data DIR --model-file model.bin --relation R [--limit N]
//       Explains correct test predictions of a relation and mines the
//       evidence patterns (bias audit).
//   xp        --data DIR --model-file model.bin --scenario necessary
//             --journal run.jnl [--resume]
//       End-to-end experiment run with a crash-safe progress journal.
//   metrics   [--demo] [--json] [--out FILE]
//       Renders the process metrics registry (Prometheus text exposition,
//       or the combined metrics + trace JSON snapshot with --json).
//
// `evaluate`, `explain` and `xp` accept --metrics-out FILE: the trace
// collector is armed for the command and the combined metrics + span
// snapshot is written as JSON when it finishes (also on failure, so
// truncated runs keep their observability).
//
// Every command reports failures as a one-line `error: ...` on stderr and
// exits nonzero; bad inputs never abort.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "baselines/explainer.h"
#include "common/budget.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/breakdown.h"
#include "eval/evaluator.h"
#include "kgraph/io.h"
#include "models/factory.h"
#include "models/model_store.h"
#include "xp/pattern_miner.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

/// Minimal --flag value parser: flags may appear in any order; every flag
/// takes a value except the boolean switches listed in IsSwitch.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + key;
        return;
      }
      key = key.substr(2);
      if (IsSwitch(key)) {
        values_[key] = "1";
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      } else {
        error_ = "flag --" + key + " needs a value";
        return;
      }
    }
  }

  static bool IsSwitch(const std::string& key) {
    return key == "sufficient" || key == "head-query" || key == "no-heads" ||
           key == "per-relation" || key == "no-recover" || key == "resume" ||
           key == "retry-truncated" || key == "json" || key == "demo";
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  Result<double> GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    const std::string raw = Get(key);
    try {
      size_t pos = 0;
      double value = std::stod(raw, &pos);
      if (pos == raw.size()) return value;
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("flag --" + key + " needs a number, got '" +
                                   raw + "'");
  }
  Result<uint64_t> GetU64(const std::string& key, uint64_t fallback) const {
    if (!Has(key)) return fallback;
    const std::string raw = Get(key);
    // stoull silently wraps negatives; reject them up front.
    if (raw.empty() || raw[0] == '-') {
      return Status::InvalidArgument("flag --" + key +
                                     " needs a non-negative integer, got '" +
                                     raw + "'");
    }
    try {
      size_t pos = 0;
      uint64_t value = std::stoull(raw, &pos);
      if (pos == raw.size()) return value;
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("flag --" + key +
                                   " needs a non-negative integer, got '" +
                                   raw + "'");
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

/// --metrics-out support: arms the trace collector for the command's
/// lifetime and writes the combined metrics + span JSON snapshot when the
/// command finishes. The snapshot is written even when the command fails,
/// so interrupted or truncated runs keep their observability; the
/// command's own status wins over a snapshot write error.
class MetricsSink {
 public:
  explicit MetricsSink(const Args& args) : path_(args.Get("metrics-out")) {
    if (!path_.empty()) {
      trace::Collector::Global().Enable();
    }
  }

  Status Finish(Status command_status) const {
    if (path_.empty()) return command_status;
    Status write_status =
        WriteTextFile(path_, trace::ObservabilitySnapshotJson(false) + "\n");
    return command_status.ok() ? write_status : command_status;
  }

 private:
  std::string path_;
};

Result<Dataset> LoadData(const Args& args) {
  if (!args.Has("data")) {
    return Status::InvalidArgument("--data DIR is required");
  }
  return LoadDatasetTsv("cli-dataset", args.Get("data"));
}

/// Extraction-limit flags shared by `explain` and `xp`. The returned limits
/// carry `cancel`, which the caller has wired to SIGINT/SIGTERM, so Ctrl-C
/// stops an in-flight extraction at the next candidate boundary.
Result<ExtractionLimits> ParseExtractionLimits(const Args& args,
                                               const CancelToken& cancel) {
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits.work_budget, args.GetU64("work-budget", 0));
  KELPIE_ASSIGN_OR_RETURN(limits.timeout_seconds,
                          args.GetDouble("per-prediction-timeout", 0.0));
  if (limits.timeout_seconds < 0.0) {
    return Status::InvalidArgument(
        "--per-prediction-timeout must be non-negative");
  }
  limits.cancel = cancel;
  return limits;
}

/// One line after an xp run when any extraction hit a limit, pointing at
/// the upgrade path.
void PrintTruncationSummary(const std::vector<Explanation>& explanations) {
  size_t truncated = 0;
  for (const Explanation& x : explanations) {
    if (x.completeness != Completeness::kComplete) ++truncated;
  }
  if (truncated > 0) {
    std::printf("  %zu/%zu extractions truncated by limits; re-run with "
                "--resume --retry-truncated and larger limits to upgrade\n",
                truncated, explanations.size());
  }
}

/// How an extraction ended, for explanation summaries: empty for a complete
/// run, otherwise a short "truncated" annotation.
std::string CompletenessSummary(const Explanation& x) {
  if (x.completeness == Completeness::kComplete) return "";
  std::string s = " [";
  s += CompletenessName(x.completeness);
  s += ", " + std::to_string(x.skipped_candidates) + " candidates skipped]";
  return s;
}

Status CmdGenerate(const Args& args) {
  std::string name = args.Get("dataset", "FB15k-237");
  BenchmarkDataset which = BenchmarkDataset::kFb15k237;
  bool found = false;
  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    if (BenchmarkDatasetName(d) == name) {
      which = d;
      found = true;
    }
  }
  if (!found) return Status::InvalidArgument("unknown dataset: " + name);
  if (!args.Has("out")) {
    return Status::InvalidArgument("--out DIR is required");
  }
  double scale = 0.0;
  KELPIE_ASSIGN_OR_RETURN(scale, args.GetDouble("scale", 0.55));
  if (!(scale > 0.0) || scale > 100.0) {
    return Status::InvalidArgument("--scale must be in (0, 100], got " +
                                   args.Get("scale"));
  }
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  // GenerateDataset (not MakeBenchmark, which CHECK-aborts) so degenerate
  // spec/scale combinations surface as an error message.
  Result<Dataset> dataset = GenerateDataset(BenchmarkSpec(which, scale, seed));
  if (!dataset.ok()) return dataset.status();
  std::error_code ec;
  std::filesystem::create_directories(args.Get("out"), ec);
  if (ec) {
    return Status::IoError("cannot create " + args.Get("out") + ": " +
                           ec.message());
  }
  KELPIE_RETURN_IF_ERROR(SaveDatasetTsv(*dataset, args.Get("out")));
  DatasetStats stats = ComputeStats(*dataset);
  std::printf("wrote %s to %s: %zu entities, %zu relations, %zu/%zu/%zu "
              "train/valid/test facts\n",
              name.c_str(), args.Get("out").c_str(), stats.num_entities,
              stats.num_relations, stats.num_train, stats.num_valid,
              stats.num_test);
  return Status::Ok();
}

Status CmdTrain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<ModelKind> kind = ParseModelKind(args.Get("model", "ComplEx"));
  if (!kind.ok()) return kind.status();
  if (!args.Has("out")) {
    return Status::InvalidArgument("--out FILE is required");
  }

  TrainConfig config = DefaultConfig(kind.value(), *dataset);
  KELPIE_ASSIGN_OR_RETURN(config.epochs, args.GetU64("epochs", config.epochs));
  KELPIE_ASSIGN_OR_RETURN(config.dim, args.GetU64("dim", config.dim));
  double grad_clip = 0.0;
  KELPIE_ASSIGN_OR_RETURN(grad_clip,
                          args.GetDouble("grad-clip", config.grad_clip_norm));
  config.grad_clip_norm = static_cast<float>(grad_clip);
  uint64_t max_recoveries = 0;
  KELPIE_ASSIGN_OR_RETURN(
      max_recoveries,
      args.GetU64("max-recoveries",
                  static_cast<uint64_t>(config.max_recoveries)));
  config.max_recoveries = static_cast<int>(max_recoveries);
  if (args.Has("no-recover")) config.recover_on_divergence = false;
  KELPIE_RETURN_IF_ERROR(ValidateConfig(kind.value(), config));

  auto model = CreateModel(kind.value(), *dataset, config);
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 42));
  Rng rng(seed);
  std::printf("training %s on %zu facts (%zu epochs, dim %zu)...\n",
              args.Get("model", "ComplEx").c_str(), dataset->train().size(),
              config.epochs, config.dim);
  KELPIE_RETURN_IF_ERROR(model->Train(*dataset, rng));
  const TrainReport& report = model->last_train_report();
  if (report.recoveries > 0) {
    std::printf("recovered from %d divergence(s); final lr scale %.4f\n",
                report.recoveries, report.lr_scale);
  }
  KELPIE_RETURN_IF_ERROR(SaveModel(*model, kind.value(), args.Get("out")));
  std::printf("saved to %s\n", args.Get("out").c_str());
  return Status::Ok();
}

Status CmdEvaluate(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  EvalOptions options;
  options.include_heads = !args.Has("no-heads");
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  EvalResult result = EvaluateTest(**model, *dataset, options);
  std::printf("%s on %zu test facts: H@1 %.3f  H@10 %.3f  MRR %.3f\n",
              std::string((*model)->Name()).c_str(),
              dataset->test().size(), result.HitsAt1(), result.HitsAt(10),
              result.Mrr());
  if (args.Has("per-relation")) {
    std::vector<RelationMetrics> rows = EvaluatePerRelation(
        **model, *dataset, dataset->test(), options.include_heads);
    std::printf("%s", FormatBreakdown(rows, *dataset).c_str());
  }
  return Status::Ok();
}

Result<Triple> ParsePredictionFlags(const Args& args, const Dataset& dataset) {
  int32_t h, r, t;
  KELPIE_ASSIGN_OR_RETURN(h, dataset.entities().Find(args.Get("head")));
  KELPIE_ASSIGN_OR_RETURN(r, dataset.relations().Find(args.Get("relation")));
  KELPIE_ASSIGN_OR_RETURN(t, dataset.entities().Find(args.Get("tail")));
  return Triple(h, r, t);
}

Status CmdExplain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<Triple> prediction = ParsePredictionFlags(args, *dataset);
  if (!prediction.ok()) return prediction.status();

  PredictionTarget target = args.Has("head-query")
                                ? PredictionTarget::kHead
                                : PredictionTarget::kTail;
  KelpieOptions options;
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  CancelToken cancel;
  WireCancelToSignals(cancel);
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits, ParseExtractionLimits(args, cancel));
  Kelpie kelpie(**model, *dataset, options);
  Explanation x;
  if (args.Has("sufficient")) {
    std::vector<EntityId> converted;
    x = kelpie.ExplainSufficient(*prediction, target, &converted, nullptr,
                                 limits);
    std::printf("sufficient explanation (over %zu conversion entities):\n",
                converted.size());
  } else {
    x = kelpie.ExplainNecessary(*prediction, target, nullptr, limits);
    std::printf("necessary explanation:\n");
  }
  if (x.empty()) {
    if (x.completeness == Completeness::kComplete) {
      std::printf("  (none found — the source entity has no usable facts)\n");
    } else {
      std::printf(
          "  (none found before the extraction was stopped:%s — raise the "
          "limits and retry)\n",
          CompletenessSummary(x).c_str());
    }
    if (x.completeness == Completeness::kCancelled) {
      return Status::Cancelled("extraction cancelled before any result");
    }
    return Status::Ok();
  }
  for (const Triple& fact : x.facts) {
    std::printf("  %s\n", dataset->TripleToString(fact).c_str());
  }
  std::printf("relevance %.2f, %s, %zu post-trainings, %.2fs%s\n",
              x.relevance, x.accepted ? "accepted" : "best-effort",
              x.post_trainings, x.seconds, CompletenessSummary(x).c_str());
  if (x.completeness == Completeness::kCancelled) {
    return Status::Cancelled("extraction cancelled; best-so-far shown above");
  }
  return Status::Ok();
}

Status CmdAudit(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<int32_t> relation =
      dataset->relations().Find(args.Get("relation"));
  if (!relation.ok()) return relation.status();
  uint64_t limit = 0;
  KELPIE_ASSIGN_OR_RETURN(limit, args.GetU64("limit", 8));

  KelpieOptions options;
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  Kelpie kelpie(**model, *dataset, options);
  PatternMiner miner;
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  Rng rng(seed);
  size_t explained = 0;
  for (const Triple& t : dataset->test()) {
    if (explained >= limit) break;
    if (t.relation != relation.value()) continue;
    if (FilteredTailRank(**model, *dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        **model, *dataset, t, PredictionTarget::kTail, 5, rng);
    if (conversion_set.empty()) continue;
    Explanation x = kelpie.ExplainSufficientWithSet(
        t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    miner.Add(t, x);
    ++explained;
  }
  std::printf("%s", miner.Report(*dataset).c_str());
  std::vector<EvidencePattern> biases = miner.BiasCandidates(0.5);
  if (biases.empty()) {
    std::printf("no dominant foreign-relation evidence (no bias flagged)\n");
  } else {
    for (const EvidencePattern& b : biases) {
      std::printf("BIAS: '%s' predictions rely on '%s' evidence "
                  "(share %.0f%%)\n",
                  dataset->relations().NameOf(b.prediction_relation).c_str(),
                  dataset->relations().NameOf(b.evidence_relation).c_str(),
                  b.share * 100.0);
    }
  }
  return Status::Ok();
}

Status CmdXp(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<ModelKind> kind = ParseModelKind((*model)->Name());
  if (!kind.ok()) return kind.status();
  const std::string scenario = args.Get("scenario", "necessary");
  if (scenario != "necessary" && scenario != "sufficient") {
    return Status::InvalidArgument(
        "--scenario must be 'necessary' or 'sufficient', got '" + scenario +
        "'");
  }
  if (!args.Has("journal")) {
    return Status::InvalidArgument("--journal FILE is required");
  }
  uint64_t sample = 0, seed = 0, conversion_set_size = 0, threads = 0;
  KELPIE_ASSIGN_OR_RETURN(sample, args.GetU64("sample", 8));
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  KELPIE_ASSIGN_OR_RETURN(conversion_set_size,
                          args.GetU64("conversion-set", 5));
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));

  Rng sample_rng(seed);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(**model, *dataset, sample, sample_rng);
  if (predictions.empty()) {
    return Status::FailedPrecondition(
        "no correct test predictions to explain — the model ranks no test "
        "fact first");
  }

  KelpieOptions options;
  options.num_threads = threads;
  KelpieExplainer explainer(**model, *dataset, options);
  JournalOptions journal{args.Get("journal"), args.Has("resume")};

  // Bounded extraction: Ctrl-C (or SIGTERM) flips the shared cancel token;
  // the in-flight extraction stops at its next candidate boundary, its
  // best-so-far record is journaled by the run loop's own flush discipline,
  // and the run returns a Cancelled summary. A second signal exits
  // immediately.
  CancelToken cancel;
  WireCancelToSignals(cancel);
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits, ParseExtractionLimits(args, cancel));
  RunControl control;
  control.cancel = cancel;
  control.retry_truncated = args.Has("retry-truncated");
  if (control.retry_truncated && !journal.resume) {
    return Status::InvalidArgument(
        "--retry-truncated only makes sense with --resume");
  }
  double deadline_seconds = 0.0;
  KELPIE_ASSIGN_OR_RETURN(deadline_seconds, args.GetDouble("deadline", 0.0));
  if (deadline_seconds < 0.0) {
    return Status::InvalidArgument("--deadline must be non-negative");
  }
  if (deadline_seconds > 0.0) {
    // One run-level clock: in-flight extractions and the prediction loop
    // observe the same deadline.
    control.deadline = Deadline::After(deadline_seconds);
    limits.deadline = control.deadline;
  }
  explainer.SetExtractionLimits(limits);

  // Derived, disjoint seed streams: the sampling rng above consumed `seed`.
  const uint64_t retrain_seed = seed + 1;
  const uint64_t conversion_seed = seed + 2;

  if (scenario == "necessary") {
    Result<NecessaryRunResult> result = RunNecessaryEndToEndResumable(
        explainer, kind.value(), *dataset, predictions, retrain_seed,
        PredictionTarget::kTail, journal, control);
    if (!result.ok()) return result.status();
    std::printf("necessary scenario over %zu predictions (journal %s):\n",
                predictions.size(), args.Get("journal").c_str());
    std::printf("  after removal + retraining: H@1 %.3f  MRR %.3f  "
                "(ΔH@1 %+.3f, ΔMRR %+.3f)\n",
                result->after.hits_at_1, result->after.mrr,
                result->delta_h1(), result->delta_mrr());
    PrintTruncationSummary(result->explanations);
  } else {
    Result<SufficientRunResult> result = RunSufficientEndToEndResumable(
        explainer, **model, kind.value(), *dataset, predictions,
        conversion_set_size, conversion_seed, retrain_seed,
        PredictionTarget::kTail, journal, control);
    if (!result.ok()) return result.status();
    std::printf("sufficient scenario over %zu predictions (journal %s):\n",
                predictions.size(), args.Get("journal").c_str());
    std::printf("  conversions before: H@1 %.3f  MRR %.3f\n",
                result->before.hits_at_1, result->before.mrr);
    std::printf("  after transfer + retraining: H@1 %.3f  MRR %.3f  "
                "(ΔH@1 %+.3f, ΔMRR %+.3f)\n",
                result->after.hits_at_1, result->after.mrr,
                result->delta_h1(), result->delta_mrr());
    PrintTruncationSummary(result->explanations);
  }
  return Status::Ok();
}

Status CmdMetrics(const Args& args) {
  metrics::Registry& reg = metrics::Registry::Global();
  if (args.Has("demo")) {
    // A tiny deterministic workload over the instrumentation primitives, so
    // the exposition formats can be inspected (and documented) without
    // loading a dataset or training a model.
    trace::Collector::Global().Enable();
    metrics::Counter& items = reg.GetCounter(
        "kelpie_demo_items_total", {{"outcome", "processed"}},
        metrics::Determinism::kDeterministic, "Demo counter.");
    metrics::Gauge& level =
        reg.GetGauge("kelpie_demo_level", {},
                     metrics::Determinism::kDeterministic, "Demo gauge.");
    metrics::Histogram& sizes = reg.GetHistogram(
        "kelpie_demo_size", metrics::LinearBuckets(1.0, 1.0, 4), {},
        metrics::Determinism::kDeterministic, "Demo histogram.");
    {
      trace::Span outer("demo.run");
      for (int i = 1; i <= 5; ++i) {
        trace::Span inner("demo.step");
        items.Increment();
        level.Set(static_cast<double>(i));
        sizes.Observe(static_cast<double>(i));
      }
    }
  }
  const std::string rendered =
      args.Has("json") ? trace::ObservabilitySnapshotJson(false) + "\n"
                       : reg.TextExposition(false);
  if (args.Has("out")) {
    KELPIE_RETURN_IF_ERROR(WriteTextFile(args.Get("out"), rendered));
    std::printf("wrote metrics snapshot to %s\n", args.Get("out").c_str());
    return Status::Ok();
  }
  std::printf("%s", rendered.c_str());
  return Status::Ok();
}

int Usage() {
  std::printf(
      "usage: kelpie <command> [flags]\n"
      "  generate --dataset NAME --scale S --seed N --out DIR\n"
      "  train    --data DIR --model NAME --seed N --out FILE "
      "[--epochs N] [--dim N] [--grad-clip X] [--no-recover] "
      "[--max-recoveries N]\n"
      "  evaluate --data DIR --model-file FILE [--no-heads] "
      "[--per-relation] [--threads N] [--metrics-out FILE]\n"
      "  explain  --data DIR --model-file FILE --head H --relation R "
      "--tail T [--sufficient] [--head-query] [--threads N] "
      "[--work-budget N] [--per-prediction-timeout S] [--metrics-out FILE]\n"
      "  audit    --data DIR --model-file FILE --relation R [--limit N] "
      "[--threads N]\n"
      "  xp       --data DIR --model-file FILE --scenario "
      "necessary|sufficient --journal FILE [--resume] [--sample N] "
      "[--seed N] [--conversion-set N] [--threads N] [--work-budget N] "
      "[--per-prediction-timeout S] [--deadline S] [--retry-truncated] "
      "[--metrics-out FILE]\n"
      "  metrics  [--demo] [--json] [--out FILE]\n"
      "models: TransE ComplEx ConvE DistMult RotatE\n"
      "datasets: FB15k FB15k-237 WN18 WN18RR YAGO3-10\n"
      "observability:\n"
      "  kelpie metrics              Prometheus text exposition of the\n"
      "                              process registry (--json for the\n"
      "                              combined metrics + trace snapshot;\n"
      "                              --demo populates sample series)\n"
      "  --metrics-out FILE          on evaluate/explain/xp: arm the trace\n"
      "                              collector and write the JSON snapshot\n"
      "                              when the command finishes\n"
      "bounded extraction:\n"
      "  --work-budget N             deterministic per-prediction budget in\n"
      "                              work units (1 unit = one post-training);\n"
      "                              same N => same truncated explanation at\n"
      "                              any thread count\n"
      "  --per-prediction-timeout S  wall-clock seconds per extraction\n"
      "                              (not deterministic)\n"
      "  --deadline S                run-level wall-clock deadline (xp)\n"
      "  --retry-truncated           with --resume: re-extract journaled\n"
      "                              predictions a limit truncated\n"
      "  SIGINT/SIGTERM cancel cleanly: the journal keeps every finished\n"
      "  prediction; a second signal exits immediately\n"
      "fault injection (tests):\n"
      "  KELPIE_FAILPOINTS=name[:match[:times]],...  arm failpoints; match\n"
      "  is a value or '*', times a count or 'forever'. Known failpoints:\n"
      "    train.diverge (value = epoch), engine.post_train.diverge\n"
      "    (value = entity id), pipeline.interrupt (value = prediction\n"
      "    index), atomic_file.partial_write, atomic_file.rename\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (const char* spec = std::getenv("KELPIE_FAILPOINTS")) {
    Status status = failpoint::ArmFromSpec(spec);
    if (!status.ok()) return Fail(status.ToString());
  }
  Args args(argc, argv);
  if (!args.error().empty()) return Fail(args.error());
  std::string command = argv[1];
  Status status = Status::Ok();
  if (command == "generate") {
    status = CmdGenerate(args);
  } else if (command == "train") {
    status = CmdTrain(args);
  } else if (command == "evaluate") {
    MetricsSink sink(args);
    status = sink.Finish(CmdEvaluate(args));
  } else if (command == "explain") {
    MetricsSink sink(args);
    status = sink.Finish(CmdExplain(args));
  } else if (command == "audit") {
    status = CmdAudit(args);
  } else if (command == "xp") {
    MetricsSink sink(args);
    status = sink.Finish(CmdXp(args));
  } else if (command == "metrics") {
    status = CmdMetrics(args);
  } else {
    return Usage();
  }
  return status.ok() ? 0 : Fail(status.ToString());
}

}  // namespace
}  // namespace kelpie

int main(int argc, char** argv) { return kelpie::Run(argc, argv); }
