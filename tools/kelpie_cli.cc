// kelpie — command-line interface to the library.
//
// Subcommands:
//   generate  --dataset FB15k --scale 0.55 --seed 7 --out DIR
//       Writes a synthetic benchmark stand-in as train/valid/test TSV.
//   train     --data DIR --model ComplEx --seed 42 --out model.bin
//       Trains a model on a TSV dataset and saves its parameters.
//   evaluate  --data DIR --model-file model.bin [--no-heads]
//       Filtered H@1 / H@10 / MRR over the test split.
//   explain   --data DIR --model-file model.bin
//             --head H --relation R --tail T [--sufficient] [--head-query]
//       Extracts a Kelpie explanation for one prediction.
//   audit     --data DIR --model-file model.bin --relation R [--limit N]
//       Explains correct test predictions of a relation and mines the
//       evidence patterns (bias audit).
//   xp        --data DIR --model-file model.bin --scenario necessary
//             --journal run.jnl [--resume]
//       End-to-end experiment run with a crash-safe progress journal.
//   score     --data DIR --model-file model.bin --head H --relation R
//             --tail T [--canonical]
//       Scores one triple (--canonical prints the serve wire format).
//   serve     --data DIR --model-file model.bin [--port N] [--pool N]
//       Serves score/explain requests over newline-delimited JSON on TCP,
//       batching them across a pool of pre-loaded model instances.
//   serve-client --port N [--connections N] [--in FILE]
//       Drives a serve endpoint with request lines; prints responses
//       sorted by id.
//   update    --data DIR --model-file model.bin --delta FILE
//             [--out model.bin] [--journal FILE] [--resume]
//       Applies a KG delta (added/removed training triples) to a trained
//       model by incrementally re-fitting the affected entities' rows —
//       no full retrain. Journaled, resumable, cache-invalidating.
//   metrics   [--demo] [--json] [--out FILE]
//       Renders the process metrics registry (Prometheus text exposition,
//       or the combined metrics + trace JSON snapshot with --json).
//
// `evaluate`, `explain` and `xp` accept --metrics-out FILE: the trace
// collector is armed for the command and the combined metrics + span
// snapshot is written as JSON when it finishes (also on failure, so
// truncated runs keep their observability).
//
// Every command reports failures as a one-line `error: ...` on stderr and
// exits nonzero; bad inputs never abort.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "baselines/explainer.h"
#include "common/atomic_file.h"
#include "common/budget.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/kelpie.h"
#include "core/relevance_cache.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/breakdown.h"
#include "eval/evaluator.h"
#include "kgraph/io.h"
#include "ml/checkpoint.h"
#include "models/factory.h"
#include "models/model_store.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "xp/pattern_miner.h"
#include "xp/pipeline.h"
#include "xp/update.h"

namespace kelpie {
namespace {

/// Minimal --flag value parser: flags may appear in any order; every flag
/// takes a value except the boolean switches listed in IsSwitch.
class Args {
 public:
  /// `start` is the first argv index to parse — 2 for `kelpie <cmd> ...`,
  /// 3 for commands with a verb (`kelpie cache stats ...`).
  Args(int argc, char** argv, int start = 2) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + key;
        return;
      }
      key = key.substr(2);
      if (IsSwitch(key)) {
        values_[key] = "1";
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      } else {
        error_ = "flag --" + key + " needs a value";
        return;
      }
    }
  }

  static bool IsSwitch(const std::string& key) {
    return key == "sufficient" || key == "head-query" || key == "no-heads" ||
           key == "per-relation" || key == "no-recover" || key == "resume" ||
           key == "retry-truncated" || key == "json" || key == "demo" ||
           key == "canonical" || key == "warm-mimics" ||
           key == "quant-shortlist" || key == "sparse";
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  Result<double> GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    const std::string raw = Get(key);
    try {
      size_t pos = 0;
      double value = std::stod(raw, &pos);
      if (pos == raw.size()) return value;
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("flag --" + key + " needs a number, got '" +
                                   raw + "'");
  }
  Result<uint64_t> GetU64(const std::string& key, uint64_t fallback) const {
    if (!Has(key)) return fallback;
    const std::string raw = Get(key);
    // stoull silently wraps negatives; reject them up front.
    if (raw.empty() || raw[0] == '-') {
      return Status::InvalidArgument("flag --" + key +
                                     " needs a non-negative integer, got '" +
                                     raw + "'");
    }
    try {
      size_t pos = 0;
      uint64_t value = std::stoull(raw, &pos);
      if (pos == raw.size()) return value;
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("flag --" + key +
                                   " needs a non-negative integer, got '" +
                                   raw + "'");
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Crash-safe text output: snapshot files (metrics, rendered reports) go
/// through the same temp-file + rename discipline as model/journal writers,
/// so a reader never sees a torn snapshot and an interrupted run keeps the
/// previous one.
Status WriteTextFile(const std::string& path, const std::string& content) {
  return WriteFileAtomic(path, content);
}

/// --metrics-out support: arms the trace collector for the command's
/// lifetime and writes the combined metrics + span JSON snapshot when the
/// command finishes. The snapshot is written even when the command fails,
/// so interrupted or truncated runs keep their observability; the
/// command's own status wins over a snapshot write error.
class MetricsSink {
 public:
  explicit MetricsSink(const Args& args) : path_(args.Get("metrics-out")) {
    if (!path_.empty()) {
      trace::Collector::Global().Enable();
    }
  }

  Status Finish(Status command_status) const {
    if (path_.empty()) return command_status;
    Status write_status =
        WriteTextFile(path_, trace::ObservabilitySnapshotJson(false) + "\n");
    return command_status.ok() ? write_status : command_status;
  }

 private:
  std::string path_;
};

/// --relevance-cache / --cache-bytes support (explain, serve): opens the
/// persistent post-training cache keyed by the model's fingerprint.
/// Returns nullptr when the flag is absent. Warm-start mimics produce
/// different (still deterministic) values than cold ones, so the warm mode
/// salts the fingerprint: cold and warm entries never answer each other.
Result<std::shared_ptr<RelevanceCache>> OpenCacheFlag(
    const Args& args, const LinkPredictionModel& model, uint64_t engine_seed,
    bool warm_mimics = false) {
  if (!args.Has("relevance-cache")) {
    return std::shared_ptr<RelevanceCache>(nullptr);
  }
  RelevanceCacheOptions options;
  options.path = args.Get("relevance-cache");
  options.fingerprint = ComputeModelFingerprint(model, engine_seed);
  if (warm_mimics) {
    options.fingerprint ^= 0x57A1213BD5A11EDull;  // "warm salt"
  }
  uint64_t max_bytes = 0;
  KELPIE_ASSIGN_OR_RETURN(max_bytes,
                          args.GetU64("cache-bytes", 64ull << 20));
  options.max_bytes = max_bytes;
  return RelevanceCache::Open(std::move(options));
}

/// Persists the cache at command end. A failed flush costs the next run its
/// warm start, never this run's result — warn and move on.
void FlushCache(const std::shared_ptr<RelevanceCache>& cache) {
  if (cache == nullptr) return;
  Status flushed = cache->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "warning: relevance-cache flush failed: %s\n",
                 flushed.ToString().c_str());
  }
}

Result<Dataset> LoadData(const Args& args) {
  if (!args.Has("data")) {
    return Status::InvalidArgument("--data DIR is required");
  }
  return LoadDatasetTsv("cli-dataset", args.Get("data"));
}

/// Extraction-limit flags shared by `explain` and `xp`. The returned limits
/// carry `cancel`, which the caller has wired to SIGINT/SIGTERM, so Ctrl-C
/// stops an in-flight extraction at the next candidate boundary.
Result<ExtractionLimits> ParseExtractionLimits(const Args& args,
                                               const CancelToken& cancel) {
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits.work_budget, args.GetU64("work-budget", 0));
  KELPIE_ASSIGN_OR_RETURN(limits.timeout_seconds,
                          args.GetDouble("per-prediction-timeout", 0.0));
  if (limits.timeout_seconds < 0.0) {
    return Status::InvalidArgument(
        "--per-prediction-timeout must be non-negative");
  }
  limits.cancel = cancel;
  return limits;
}

/// One line after an xp run when any extraction hit a limit, pointing at
/// the upgrade path.
void PrintTruncationSummary(const std::vector<Explanation>& explanations) {
  size_t truncated = 0;
  for (const Explanation& x : explanations) {
    if (x.completeness != Completeness::kComplete) ++truncated;
  }
  if (truncated > 0) {
    std::printf("  %zu/%zu extractions truncated by limits; re-run with "
                "--resume --retry-truncated and larger limits to upgrade\n",
                truncated, explanations.size());
  }
}

/// How an extraction ended, for explanation summaries: empty for a complete
/// run, otherwise a short "truncated" annotation.
std::string CompletenessSummary(const Explanation& x) {
  if (x.completeness == Completeness::kComplete) return "";
  std::string s = " [";
  s += CompletenessName(x.completeness);
  s += ", " + std::to_string(x.skipped_candidates) + " candidates skipped]";
  return s;
}

Status CmdGenerate(const Args& args) {
  std::string name = args.Get("dataset", "FB15k-237");
  BenchmarkDataset which = BenchmarkDataset::kFb15k237;
  bool found = false;
  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    if (BenchmarkDatasetName(d) == name) {
      which = d;
      found = true;
    }
  }
  if (!found) return Status::InvalidArgument("unknown dataset: " + name);
  if (!args.Has("out")) {
    return Status::InvalidArgument("--out DIR is required");
  }
  double scale = 0.0;
  KELPIE_ASSIGN_OR_RETURN(scale, args.GetDouble("scale", 0.55));
  if (!(scale > 0.0) || scale > 100.0) {
    return Status::InvalidArgument("--scale must be in (0, 100], got " +
                                   args.Get("scale"));
  }
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  // GenerateDataset (not MakeBenchmark, which CHECK-aborts) so degenerate
  // spec/scale combinations surface as an error message.
  Result<Dataset> dataset = GenerateDataset(BenchmarkSpec(which, scale, seed));
  if (!dataset.ok()) return dataset.status();
  std::error_code ec;
  std::filesystem::create_directories(args.Get("out"), ec);
  if (ec) {
    return Status::IoError("cannot create " + args.Get("out") + ": " +
                           ec.message());
  }
  KELPIE_RETURN_IF_ERROR(SaveDatasetTsv(*dataset, args.Get("out")));
  DatasetStats stats = ComputeStats(*dataset);
  std::printf("wrote %s to %s: %zu entities, %zu relations, %zu/%zu/%zu "
              "train/valid/test facts\n",
              name.c_str(), args.Get("out").c_str(), stats.num_entities,
              stats.num_relations, stats.num_train, stats.num_valid,
              stats.num_test);
  return Status::Ok();
}

Status CmdTrain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<ModelKind> kind = ParseModelKind(args.Get("model", "ComplEx"));
  if (!kind.ok()) return kind.status();
  if (!args.Has("out")) {
    return Status::InvalidArgument("--out FILE is required");
  }

  TrainConfig config = DefaultConfig(kind.value(), *dataset);
  KELPIE_ASSIGN_OR_RETURN(config.epochs, args.GetU64("epochs", config.epochs));
  KELPIE_ASSIGN_OR_RETURN(config.dim, args.GetU64("dim", config.dim));
  double grad_clip = 0.0;
  KELPIE_ASSIGN_OR_RETURN(grad_clip,
                          args.GetDouble("grad-clip", config.grad_clip_norm));
  config.grad_clip_norm = static_cast<float>(grad_clip);
  uint64_t max_recoveries = 0;
  KELPIE_ASSIGN_OR_RETURN(
      max_recoveries,
      args.GetU64("max-recoveries",
                  static_cast<uint64_t>(config.max_recoveries)));
  config.max_recoveries = static_cast<int>(max_recoveries);
  if (args.Has("no-recover")) config.recover_on_divergence = false;
  // Route embedding gradients through the touched-row sparse optimizers.
  // Byte-identical to the dense path by construction, so the flag only
  // changes memory behavior, never the saved model.
  if (args.Has("sparse")) config.sparse_updates = true;
  KELPIE_RETURN_IF_ERROR(ValidateConfig(kind.value(), config));

  auto model = CreateModel(kind.value(), *dataset, config);
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 42));
  Rng rng(seed);

  // Crash-safe checkpointing: --checkpoint DIR writes train.ckpt at every
  // interval boundary; --resume picks a matching checkpoint back up, and a
  // resumed run converges to a model byte-identical to an uninterrupted
  // one. The fingerprint ties the checkpoint to this exact setup.
  std::unique_ptr<TrainCheckpointer> checkpointer;
  TrainControl control;
  if (args.Has("checkpoint")) {
    CheckpointOptions ckpt;
    ckpt.directory = args.Get("checkpoint");
    uint64_t interval = 0;
    KELPIE_ASSIGN_OR_RETURN(interval, args.GetU64("checkpoint-interval", 1));
    ckpt.interval_epochs = static_cast<size_t>(interval);
    ckpt.resume = args.Has("resume");
    ckpt.fingerprint =
        ComputeTrainFingerprint(kind.value(), config, *dataset, seed);
    checkpointer = std::make_unique<TrainCheckpointer>(std::move(ckpt));
    control.checkpointer = checkpointer.get();
  } else if (args.Has("resume")) {
    return Status::InvalidArgument("--resume requires --checkpoint DIR");
  }
  // Drain semantics, mirroring serve: the first SIGINT/SIGTERM finishes
  // the in-flight epoch, flushes the last-good state (checkpoint or
  // .partial model below), and exits clean; a second signal exits hard.
  WireCancelToSignals(control.cancel);

  std::printf("training %s on %zu facts (%zu epochs, dim %zu)...\n",
              args.Get("model", "ComplEx").c_str(), dataset->train().size(),
              config.epochs, config.dim);
  KELPIE_RETURN_IF_ERROR(model->Train(*dataset, rng, control));
  if (checkpointer != nullptr && checkpointer->options().resume) {
    if (checkpointer->last_restore_outcome() ==
        CheckpointRestoreOutcome::kRestored) {
      std::printf("resumed from checkpoint at epoch %llu\n",
                  static_cast<unsigned long long>(
                      checkpointer->restored_epoch()));
    } else {
      std::printf(
          "checkpoint restore: %s; trained from scratch\n",
          std::string(CheckpointRestoreOutcomeName(
                          checkpointer->last_restore_outcome()))
              .c_str());
    }
  }
  const TrainReport& report = model->last_train_report();
  if (report.recoveries > 0) {
    std::printf("recovered from %d divergence(s); final lr scale %.4f\n",
                report.recoveries, report.lr_scale);
  }
  std::printf("completeness: %s\n",
              std::string(CompletenessName(report.completeness)).c_str());
  if (report.completeness == Completeness::kCancelled) {
    // Cancelled runs never overwrite --out. The last-good state is already
    // durable in the checkpoint when one is configured; otherwise flush it
    // next to the target so the epochs run so far are not discarded.
    if (checkpointer != nullptr) {
      std::printf("cancelled; resume with --resume (checkpoint in %s)\n",
                  args.Get("checkpoint").c_str());
    } else {
      const std::string partial = args.Get("out") + ".partial";
      KELPIE_RETURN_IF_ERROR(SaveModel(*model, kind.value(), partial));
      std::printf("cancelled; partial model saved to %s\n", partial.c_str());
    }
    return Status::Cancelled("training cancelled by signal");
  }
  KELPIE_RETURN_IF_ERROR(SaveModel(*model, kind.value(), args.Get("out")));
  std::printf("saved to %s\n", args.Get("out").c_str());
  return Status::Ok();
}

Status CmdEvaluate(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  EvalOptions options;
  options.include_heads = !args.Has("no-heads");
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  EvalResult result = EvaluateTest(**model, *dataset, options);
  std::printf("%s on %zu test facts: H@1 %.3f  H@10 %.3f  MRR %.3f\n",
              std::string((*model)->Name()).c_str(),
              dataset->test().size(), result.HitsAt1(), result.HitsAt(10),
              result.Mrr());
  if (args.Has("per-relation")) {
    std::vector<RelationMetrics> rows = EvaluatePerRelation(
        **model, *dataset, dataset->test(), options.include_heads);
    std::printf("%s", FormatBreakdown(rows, *dataset).c_str());
  }
  return Status::Ok();
}

Result<Triple> ParsePredictionFlags(const Args& args, const Dataset& dataset) {
  int32_t h, r, t;
  KELPIE_ASSIGN_OR_RETURN(h, dataset.entities().Find(args.Get("head")));
  KELPIE_ASSIGN_OR_RETURN(r, dataset.relations().Find(args.Get("relation")));
  KELPIE_ASSIGN_OR_RETURN(t, dataset.entities().Find(args.Get("tail")));
  return Triple(h, r, t);
}

Status CmdExplain(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<Triple> prediction = ParsePredictionFlags(args, *dataset);
  if (!prediction.ok()) return prediction.status();

  PredictionTarget target = args.Has("head-query")
                                ? PredictionTarget::kHead
                                : PredictionTarget::kTail;
  KelpieOptions options;
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  options.engine.warm_start_mimics = args.Has("warm-mimics");
  KELPIE_ASSIGN_OR_RETURN(
      options.engine.relevance_cache,
      OpenCacheFlag(args, **model, options.engine.seed,
                    options.engine.warm_start_mimics));
  CancelToken cancel;
  WireCancelToSignals(cancel);
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits, ParseExtractionLimits(args, cancel));
  Kelpie kelpie(**model, *dataset, options);
  uint64_t canonical_id = 0;
  KELPIE_ASSIGN_OR_RETURN(canonical_id, args.GetU64("id", 0));
  Explanation x;
  std::vector<EntityId> converted;
  if (args.Has("sufficient")) {
    x = kelpie.ExplainSufficient(*prediction, target, &converted, nullptr,
                                 limits);
  } else {
    x = kelpie.ExplainNecessary(*prediction, target, nullptr, limits);
  }
  // Persist before printing: every exit path below (including cancelled
  // best-effort results) keeps the relevance work it already paid for.
  FlushCache(options.engine.relevance_cache);
  if (args.Has("canonical")) {
    // The exact bytes `kelpie serve` sends for this request: the serve-smoke
    // CI job diffs this one-shot output against the served responses.
    std::printf("%s\n",
                serve::ExplainResponseLine(canonical_id, x, converted, *dataset)
                    .c_str());
    if (x.completeness == Completeness::kCancelled) {
      return Status::Cancelled("extraction cancelled");
    }
    return Status::Ok();
  }
  if (args.Has("sufficient")) {
    std::printf("sufficient explanation (over %zu conversion entities):\n",
                converted.size());
  } else {
    std::printf("necessary explanation:\n");
  }
  if (x.empty()) {
    if (x.completeness == Completeness::kComplete) {
      std::printf("  (none found — the source entity has no usable facts)\n");
    } else {
      std::printf(
          "  (none found before the extraction was stopped:%s — raise the "
          "limits and retry)\n",
          CompletenessSummary(x).c_str());
    }
    if (x.completeness == Completeness::kCancelled) {
      return Status::Cancelled("extraction cancelled before any result");
    }
    return Status::Ok();
  }
  for (const Triple& fact : x.facts) {
    std::printf("  %s\n", dataset->TripleToString(fact).c_str());
  }
  std::printf("relevance %.2f, %s, %zu post-trainings, %.2fs%s\n",
              x.relevance, x.accepted ? "accepted" : "best-effort",
              x.post_trainings, x.seconds, CompletenessSummary(x).c_str());
  if (x.completeness == Completeness::kCancelled) {
    return Status::Cancelled("extraction cancelled; best-so-far shown above");
  }
  return Status::Ok();
}

Status CmdScore(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<Triple> prediction = ParsePredictionFlags(args, *dataset);
  if (!prediction.ok()) return prediction.status();
  const float score = (*model)->Score(*prediction);
  if (args.Has("canonical")) {
    uint64_t id = 0;
    KELPIE_ASSIGN_OR_RETURN(id, args.GetU64("id", 0));
    std::printf("%s\n", serve::ScoreResponseLine(id, score).c_str());
  } else {
    std::printf("%s scores %s\n",
                dataset->TripleToString(*prediction).c_str(),
                metrics::FormatDouble(score).c_str());
  }
  return Status::Ok();
}

Status CmdServe(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  if (!args.Has("model-file")) {
    return Status::InvalidArgument("--model-file FILE is required");
  }

  serve::ServerOptions options;
  uint64_t pool = 0, dispatchers = 0, max_queue = 0, max_batch = 0,
           threads = 0;
  KELPIE_ASSIGN_OR_RETURN(pool, args.GetU64("pool", 2));
  KELPIE_ASSIGN_OR_RETURN(dispatchers, args.GetU64("dispatchers", 0));
  KELPIE_ASSIGN_OR_RETURN(max_queue, args.GetU64("max-queue", 256));
  KELPIE_ASSIGN_OR_RETURN(max_batch, args.GetU64("max-batch", 16));
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  if (pool == 0) return Status::InvalidArgument("--pool must be >= 1");
  if (max_batch == 0) {
    return Status::InvalidArgument("--max-batch must be >= 1");
  }
  options.pool_size = pool;
  options.dispatchers = dispatchers;
  options.max_queue_depth = max_queue;
  options.max_batch = max_batch;
  options.kelpie.num_threads = threads;
  options.kelpie.engine.warm_start_mimics = args.Has("warm-mimics");
  if (args.Has("relevance-cache")) {
    // The pool loads its own model copies; this load exists only to compute
    // the cache fingerprint, and is dropped before the server starts.
    Result<std::unique_ptr<LinkPredictionModel>> model =
        LoadModel(args.Get("model-file"));
    if (!model.ok()) return model.status();
    KELPIE_ASSIGN_OR_RETURN(
        options.kelpie.engine.relevance_cache,
        OpenCacheFlag(args, **model, options.kelpie.engine.seed,
                      options.kelpie.engine.warm_start_mimics));
  }
  // SIGTERM/SIGINT drain the front-end only: the listener stops accepting
  // and reading, but in-flight extractions keep an untriggered cancel token
  // so buffered requests finish before the process exits 0.
  CancelToken drain;
  WireCancelToSignals(drain);
  options.cancel = CancelToken();

  Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Create(args.Get("model-file"), *dataset, options);
  if (!server.ok()) return server.status();

  serve::TcpServerOptions tcp;
  tcp.host = args.Get("host", "127.0.0.1");
  uint64_t port = 0;
  KELPIE_ASSIGN_OR_RETURN(port, args.GetU64("port", 0));
  if (port > 65535) return Status::InvalidArgument("--port must be <= 65535");
  tcp.port = static_cast<int>(port);
  tcp.cancel = drain;
  serve::TcpServer front(**server, tcp);
  KELPIE_RETURN_IF_ERROR(front.Start());
  std::printf("serving on %s:%d (pool %zu, queue %zu, batch %zu)\n",
              tcp.host.c_str(), front.port(), options.pool_size,
              options.max_queue_depth, options.max_batch);
  std::fflush(stdout);
  front.Run();
  (*server)->Stop();
  std::printf("serve stopped\n");
  return Status::Ok();
}

Status CmdServeClient(const Args& args) {
  serve::ClientOptions options;
  options.host = args.Get("host", "127.0.0.1");
  uint64_t port = 0, connections = 0;
  KELPIE_ASSIGN_OR_RETURN(port, args.GetU64("port", 0));
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("--port PORT is required");
  }
  options.port = static_cast<int>(port);
  KELPIE_ASSIGN_OR_RETURN(connections, args.GetU64("connections", 1));
  options.connections = connections;
  uint64_t retries = 0, retry_seed = 0;
  KELPIE_ASSIGN_OR_RETURN(retries, args.GetU64("retries", 3));
  KELPIE_ASSIGN_OR_RETURN(retry_seed, args.GetU64("retry-seed", 1));
  options.max_retries = retries;
  options.retry_seed = retry_seed;
  KELPIE_ASSIGN_OR_RETURN(options.retry_backoff_seconds,
                          args.GetDouble("retry-backoff", 0.05));
  KELPIE_ASSIGN_OR_RETURN(options.retry_backoff_cap_seconds,
                          args.GetDouble("retry-backoff-cap", 1.0));
  if (options.retry_backoff_seconds < 0.0 ||
      options.retry_backoff_cap_seconds < 0.0) {
    return Status::InvalidArgument("retry backoff values must be >= 0");
  }

  std::vector<std::string> lines;
  if (args.Has("in")) {
    std::ifstream in(args.Get("in"));
    if (!in) return Status::IoError("cannot open " + args.Get("in"));
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument(
        "no request lines (pass --in FILE or pipe them on stdin)");
  }
  Result<serve::ClientBatchResult> batch =
      serve::RunClientBatch(options, lines);
  if (!batch.ok()) return batch.status();
  for (const std::string& response : batch->responses) {
    std::printf("%s\n", response.c_str());
  }
  if (batch->retries > 0) {
    std::fprintf(stderr, "serve-client: %zu retries performed\n",
                 batch->retries);
  }
  if (batch->exhausted > 0) {
    // Every request still produced a response line above; the nonzero exit
    // tells scripts that some of them are the synthesized/final errors.
    return Status::Unavailable(std::to_string(batch->exhausted) +
                               " request(s) exhausted their retry budget");
  }
  return Status::Ok();
}

/// `kelpie cache <verb> --file PATH`: offline maintenance of a relevance
/// cache file. `stats` parses it with the loader's recovery rules (against
/// its own header fingerprint) and reports what a matching model would
/// load; `purge` deletes it (missing is fine — purge is idempotent).
Status CmdCache(const std::string& verb, const Args& args) {
  if (!args.Has("file")) {
    return Status::InvalidArgument("--file PATH is required");
  }
  const std::string path = args.Get("file");
  if (verb == "stats") {
    Result<RelevanceCacheFileInfo> info = RelevanceCache::Inspect(path);
    if (!info.ok()) return info.status();
    std::printf("file          %s\n", path.c_str());
    std::printf("file bytes    %zu\n", info->file_bytes);
    std::printf("header        %s\n", info->header_ok ? "ok" : "corrupt");
    if (!info->header_ok) {
      std::printf("(a matching model loads this file as an empty cache)\n");
      return Status::Ok();
    }
    std::printf("fingerprint   %016llx\n",
                static_cast<unsigned long long>(info->fingerprint));
    std::printf("entries       %zu\n", info->entries);
    std::printf("payload bytes %zu\n", info->payload_bytes);
    std::printf("corrupt       %llu\n",
                static_cast<unsigned long long>(info->corrupt_entries));
    std::printf("torn tail     %s\n", info->torn_tail ? "yes" : "no");
    return Status::Ok();
  }
  if (verb == "purge") {
    std::error_code ec;
    const bool removed = std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IoError("purge " + path + ": " + ec.message());
    }
    std::printf(removed ? "purged %s\n" : "no cache at %s\n", path.c_str());
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown cache verb '" + verb +
                                 "' (expected stats|purge)");
}

/// `kelpie update`: incremental KG maintenance (DESIGN.md §16). Ingests a
/// delta file of added/removed training triples, re-fits the affected
/// entities' embedding rows from a warm start against the updated graph
/// (all other parameters frozen), and atomically rewrites the model — the
/// cost scales with the delta, not the graph. With --journal the operation
/// survives a mid-run kill: completed rows are CRC-framed on disk and a
/// --resume re-run replays them byte-identically. With --relevance-cache
/// the persistent post-training cache is reconciled: changed parameters
/// invalidate it wholesale (every mimic depends on the full parameter
/// vector), an unchanged-parameter update garbage-collects the affected
/// entities' now-unreachable entries.
Status CmdUpdate(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<ModelKind> kind = ParseModelKind((*model)->Name());
  if (!kind.ok()) return kind.status();
  if (!args.Has("delta")) {
    return Status::InvalidArgument("--delta FILE is required");
  }
  const std::string delta_path = args.Get("delta");
  std::ifstream delta_in(delta_path, std::ios::binary);
  if (!delta_in) return Status::IoError("cannot open " + delta_path);
  std::ostringstream delta_buffer;
  delta_buffer << delta_in.rdbuf();
  if (delta_in.bad()) return Status::IoError("cannot read " + delta_path);
  Result<xp::KgDelta> delta =
      xp::ParseKgDelta(delta_buffer.str(), *dataset, delta_path);
  if (!delta.ok()) return delta.status();

  xp::UpdateOptions options;
  KELPIE_ASSIGN_OR_RETURN(options.seed, args.GetU64("seed", 7));
  options.journal_path = args.Get("journal");
  options.resume = args.Has("resume");
  if (options.resume && options.journal_path.empty()) {
    return Status::InvalidArgument("--resume requires --journal FILE");
  }
  // First signal finishes the in-flight row and exits with every completed
  // row journaled; a second exits hard. Mirrors train/xp drain semantics.
  WireCancelToSignals(options.cancel);

  Stopwatch timer;
  Result<xp::UpdateReport> report =
      xp::ApplyKgUpdate(**model, *dataset, *delta, options);
  if (!report.ok()) return report.status();

  const std::string out = args.Get("out", args.Get("model-file"));
  KELPIE_RETURN_IF_ERROR(SaveModel(**model, kind.value(), out));
  if (args.Has("out-data")) {
    const Dataset updated =
        dataset->WithModifiedTraining(delta->remove, delta->add);
    std::error_code ec;
    std::filesystem::create_directories(args.Get("out-data"), ec);
    if (ec) {
      return Status::IoError("cannot create " + args.Get("out-data") + ": " +
                             ec.message());
    }
    KELPIE_RETURN_IF_ERROR(SaveDatasetTsv(updated, args.Get("out-data")));
  }
  // The journal is spent once the updated model is durable: its run id
  // binds to the pre-update parameters, so leaving it behind would only
  // trip a later unrelated --resume.
  if (!options.journal_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(options.journal_path, ec);
  }

  std::printf("applied %s: +%zu/-%zu training facts, %zu affected "
              "entities (%zu isolated)\n",
              delta_path.c_str(), report->triples_added,
              report->triples_removed, report->affected.size(),
              report->isolated.size());
  std::printf("  rows: %zu recomputed, %zu replayed from journal\n",
              report->rows_recomputed, report->rows_replayed);
  std::printf("  parameters %s (fingerprint %016llx -> %016llx)\n",
              report->params_changed ? "changed" : "unchanged",
              static_cast<unsigned long long>(report->fingerprint_before),
              static_cast<unsigned long long>(report->fingerprint_after));

  if (args.Has("relevance-cache")) {
    // Open against the post-update fingerprint: a parameter change makes
    // the loader invalidate the old file wholesale (tier 1); otherwise the
    // entries load and the affected entities' dead keys are collected
    // (tier 2). Either way the flushed file is consistent with the model
    // just saved.
    std::shared_ptr<RelevanceCache> cache;
    KELPIE_ASSIGN_OR_RETURN(cache,
                            OpenCacheFlag(args, **model, options.seed,
                                          args.Has("warm-mimics")));
    const size_t purged = cache->PurgeEntities(report->affected);
    const RelevanceCacheStats stats = cache->stats();
    if (stats.evict_fingerprint > 0) {
      std::printf("  relevance cache: invalidated wholesale (parameters "
                  "changed)\n");
    } else {
      std::printf("  relevance cache: %zu stale entr%s purged, %zu kept\n",
                  purged, purged == 1 ? "y" : "ies", stats.entries);
    }
    FlushCache(cache);
  }
  std::printf("  saved to %s (%.2fs)\n", out.c_str(), timer.ElapsedSeconds());
  return Status::Ok();
}

Status CmdAudit(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<int32_t> relation =
      dataset->relations().Find(args.Get("relation"));
  if (!relation.ok()) return relation.status();
  uint64_t limit = 0;
  KELPIE_ASSIGN_OR_RETURN(limit, args.GetU64("limit", 8));

  KelpieOptions options;
  uint64_t threads = 0;
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));
  options.num_threads = threads;
  Kelpie kelpie(**model, *dataset, options);
  PatternMiner miner;
  uint64_t seed = 0;
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  Rng rng(seed);
  size_t explained = 0;
  for (const Triple& t : dataset->test()) {
    if (explained >= limit) break;
    if (t.relation != relation.value()) continue;
    if (FilteredTailRank(**model, *dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        **model, *dataset, t, PredictionTarget::kTail, 5, rng);
    if (conversion_set.empty()) continue;
    Explanation x = kelpie.ExplainSufficientWithSet(
        t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    miner.Add(t, x);
    ++explained;
  }
  std::printf("%s", miner.Report(*dataset).c_str());
  std::vector<EvidencePattern> biases = miner.BiasCandidates(0.5);
  if (biases.empty()) {
    std::printf("no dominant foreign-relation evidence (no bias flagged)\n");
  } else {
    for (const EvidencePattern& b : biases) {
      std::printf("BIAS: '%s' predictions rely on '%s' evidence "
                  "(share %.0f%%)\n",
                  dataset->relations().NameOf(b.prediction_relation).c_str(),
                  dataset->relations().NameOf(b.evidence_relation).c_str(),
                  b.share * 100.0);
    }
  }
  return Status::Ok();
}

Status CmdXp(const Args& args) {
  Result<Dataset> dataset = LoadData(args);
  if (!dataset.ok()) return dataset.status();
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(args.Get("model-file"));
  if (!model.ok()) return model.status();
  Result<ModelKind> kind = ParseModelKind((*model)->Name());
  if (!kind.ok()) return kind.status();
  const std::string scenario = args.Get("scenario", "necessary");
  if (scenario != "necessary" && scenario != "sufficient") {
    return Status::InvalidArgument(
        "--scenario must be 'necessary' or 'sufficient', got '" + scenario +
        "'");
  }
  if (!args.Has("journal")) {
    return Status::InvalidArgument("--journal FILE is required");
  }
  uint64_t sample = 0, seed = 0, conversion_set_size = 0, threads = 0;
  KELPIE_ASSIGN_OR_RETURN(sample, args.GetU64("sample", 8));
  KELPIE_ASSIGN_OR_RETURN(seed, args.GetU64("seed", 7));
  KELPIE_ASSIGN_OR_RETURN(conversion_set_size,
                          args.GetU64("conversion-set", 5));
  KELPIE_ASSIGN_OR_RETURN(threads, args.GetU64("threads", 1));

  Rng sample_rng(seed);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(**model, *dataset, sample, sample_rng);
  if (predictions.empty()) {
    return Status::FailedPrecondition(
        "no correct test predictions to explain — the model ranks no test "
        "fact first");
  }

  KelpieOptions options;
  options.num_threads = threads;
  KelpieExplainer explainer(**model, *dataset, options);
  JournalOptions journal{args.Get("journal"), args.Has("resume")};

  // Bounded extraction: Ctrl-C (or SIGTERM) flips the shared cancel token;
  // the in-flight extraction stops at its next candidate boundary, its
  // best-so-far record is journaled by the run loop's own flush discipline,
  // and the run returns a Cancelled summary. A second signal exits
  // immediately.
  CancelToken cancel;
  WireCancelToSignals(cancel);
  ExtractionLimits limits;
  KELPIE_ASSIGN_OR_RETURN(limits, ParseExtractionLimits(args, cancel));
  RunControl control;
  control.cancel = cancel;
  control.retry_truncated = args.Has("retry-truncated");
  if (control.retry_truncated && !journal.resume) {
    return Status::InvalidArgument(
        "--retry-truncated only makes sense with --resume");
  }
  // Warm-start end-to-end retrains from a training checkpoint (the base
  // model's --checkpoint directory): the retrain resumes from the converged
  // parameters and runs only --warm-epochs epochs instead of a full
  // from-scratch schedule. Changes the measured deltas (they answer "what
  // does a short continuation from the converged state do"), so journals of
  // warm runs get a distinct run id and never mix with cold ones.
  control.retrain.warm_start_checkpoint = args.Get("warm-start");
  uint64_t warm_epochs = 0;
  KELPIE_ASSIGN_OR_RETURN(warm_epochs, args.GetU64("warm-epochs", 0));
  control.retrain.warm_epochs = warm_epochs;
  if (warm_epochs > 0 && control.retrain.warm_start_checkpoint.empty()) {
    return Status::InvalidArgument("--warm-epochs needs --warm-start DIR");
  }
  double deadline_seconds = 0.0;
  KELPIE_ASSIGN_OR_RETURN(deadline_seconds, args.GetDouble("deadline", 0.0));
  if (deadline_seconds < 0.0) {
    return Status::InvalidArgument("--deadline must be non-negative");
  }
  if (deadline_seconds > 0.0) {
    // One run-level clock: in-flight extractions and the prediction loop
    // observe the same deadline.
    control.deadline = Deadline::After(deadline_seconds);
    limits.deadline = control.deadline;
  }
  explainer.SetExtractionLimits(limits);

  // Derived, disjoint seed streams: the sampling rng above consumed `seed`.
  const uint64_t retrain_seed = seed + 1;
  const uint64_t conversion_seed = seed + 2;

  // Wall-clock over the whole run (extraction + end-to-end retrain): the
  // number EXPERIMENTS.md quotes for the warm-start retrain speedup.
  Stopwatch run_timer;
  if (scenario == "necessary") {
    Result<NecessaryRunResult> result = RunNecessaryEndToEndResumable(
        explainer, kind.value(), *dataset, predictions, retrain_seed,
        PredictionTarget::kTail, journal, control);
    if (!result.ok()) return result.status();
    std::printf("necessary scenario over %zu predictions (journal %s):\n",
                predictions.size(), args.Get("journal").c_str());
    std::printf("  after removal + retraining: H@1 %.3f  MRR %.3f  "
                "(ΔH@1 %+.3f, ΔMRR %+.3f)\n",
                result->after.hits_at_1, result->after.mrr,
                result->delta_h1(), result->delta_mrr());
    PrintTruncationSummary(result->explanations);
  } else {
    Result<SufficientRunResult> result = RunSufficientEndToEndResumable(
        explainer, **model, kind.value(), *dataset, predictions,
        conversion_set_size, conversion_seed, retrain_seed,
        PredictionTarget::kTail, journal, control);
    if (!result.ok()) return result.status();
    std::printf("sufficient scenario over %zu predictions (journal %s):\n",
                predictions.size(), args.Get("journal").c_str());
    std::printf("  conversions before: H@1 %.3f  MRR %.3f\n",
                result->before.hits_at_1, result->before.mrr);
    std::printf("  after transfer + retraining: H@1 %.3f  MRR %.3f  "
                "(ΔH@1 %+.3f, ΔMRR %+.3f)\n",
                result->after.hits_at_1, result->after.mrr,
                result->delta_h1(), result->delta_mrr());
    PrintTruncationSummary(result->explanations);
  }
  std::printf("  wall time: %.2fs%s\n", run_timer.ElapsedSeconds(),
              control.retrain.warm_start_checkpoint.empty()
                  ? ""
                  : " (warm-start retrain)");
  return Status::Ok();
}

Status CmdMetrics(const Args& args) {
  metrics::Registry& reg = metrics::Registry::Global();
  if (args.Has("demo")) {
    // A tiny deterministic workload over the instrumentation primitives, so
    // the exposition formats can be inspected (and documented) without
    // loading a dataset or training a model.
    trace::Collector::Global().Enable();
    metrics::Counter& items = reg.GetCounter(
        "kelpie_demo_items_total", {{"outcome", "processed"}},
        metrics::Determinism::kDeterministic, "Demo counter.");
    metrics::Gauge& level =
        reg.GetGauge("kelpie_demo_level", {},
                     metrics::Determinism::kDeterministic, "Demo gauge.");
    metrics::Histogram& sizes = reg.GetHistogram(
        "kelpie_demo_size", metrics::LinearBuckets(1.0, 1.0, 4), {},
        metrics::Determinism::kDeterministic, "Demo histogram.");
    {
      trace::Span outer("demo.run");
      for (int i = 1; i <= 5; ++i) {
        trace::Span inner("demo.step");
        items.Increment();
        level.Set(static_cast<double>(i));
        sizes.Observe(static_cast<double>(i));
      }
    }
  }
  const std::string rendered =
      args.Has("json") ? trace::ObservabilitySnapshotJson(false) + "\n"
                       : reg.TextExposition(false);
  if (args.Has("out")) {
    KELPIE_RETURN_IF_ERROR(WriteTextFile(args.Get("out"), rendered));
    std::printf("wrote metrics snapshot to %s\n", args.Get("out").c_str());
    return Status::Ok();
  }
  std::printf("%s", rendered.c_str());
  return Status::Ok();
}

int Usage() {
  std::printf(
      "usage: kelpie <command> [flags]\n"
      "  generate --dataset NAME --scale S --seed N --out DIR\n"
      "  train    --data DIR --model NAME --seed N --out FILE "
      "[--epochs N] [--dim N] [--grad-clip X] [--no-recover] "
      "[--max-recoveries N] [--checkpoint DIR] [--checkpoint-interval N] "
      "[--resume] [--sparse]\n"
      "  evaluate --data DIR --model-file FILE [--no-heads] "
      "[--per-relation] [--threads N] [--metrics-out FILE] "
      "[--quant-shortlist]\n"
      "  explain  --data DIR --model-file FILE --head H --relation R "
      "--tail T [--sufficient] [--head-query] [--threads N] "
      "[--work-budget N] [--per-prediction-timeout S] [--metrics-out FILE] "
      "[--canonical] [--id N] [--relevance-cache FILE] [--cache-bytes N] "
      "[--warm-mimics] [--quant-shortlist]\n"
      "  score    --data DIR --model-file FILE --head H --relation R "
      "--tail T [--canonical] [--id N]\n"
      "  serve    --data DIR --model-file FILE [--host ADDR] [--port N] "
      "[--pool N] [--dispatchers N] [--max-queue N] [--max-batch N] "
      "[--threads N] [--metrics-out FILE] [--relevance-cache FILE] "
      "[--cache-bytes N] [--warm-mimics] [--quant-shortlist]\n"
      "  serve-client --port N [--host ADDR] [--connections N] [--in FILE] "
      "[--retries N] [--retry-backoff S] [--retry-backoff-cap S] "
      "[--retry-seed N]\n"
      "  cache    stats|purge --file FILE\n"
      "  update   --data DIR --model-file FILE --delta FILE [--out FILE] "
      "[--out-data DIR] [--seed N] [--journal FILE] [--resume] "
      "[--relevance-cache FILE] [--cache-bytes N] [--warm-mimics]\n"
      "  audit    --data DIR --model-file FILE --relation R [--limit N] "
      "[--threads N]\n"
      "  xp       --data DIR --model-file FILE --scenario "
      "necessary|sufficient --journal FILE [--resume] [--sample N] "
      "[--seed N] [--conversion-set N] [--threads N] [--work-budget N] "
      "[--per-prediction-timeout S] [--deadline S] [--retry-truncated] "
      "[--metrics-out FILE] [--warm-start DIR] [--warm-epochs N] "
      "[--quant-shortlist]\n"
      "  metrics  [--demo] [--json] [--out FILE]\n"
      "serving:\n"
      "  kelpie serve                newline-delimited-JSON TCP service over\n"
      "                              a pool of pre-loaded model instances\n"
      "                              (score/explain/ping/health/stats/\n"
      "                              shutdown ops; port 0 picks an ephemeral\n"
      "                              port). Responses are byte-identical to\n"
      "                              the one-shot `score --canonical` /\n"
      "                              `explain --canonical` output.\n"
      "                              SIGTERM/shutdown drain: buffered\n"
      "                              requests finish, new connections are\n"
      "                              refused, health answers \"draining\"\n"
      "  kelpie serve-client         sends request lines (stdin or --in) over\n"
      "                              N connections, prints responses sorted\n"
      "                              by id; shed (Unavailable) and reset\n"
      "                              requests are retried with capped\n"
      "                              exponential backoff + deterministic\n"
      "                              jitter; exits nonzero only when a\n"
      "                              request exhausts --retries\n"
      "  --relevance-cache FILE      on explain/serve: persistent CRC-framed\n"
      "                              post-training cache keyed by the model\n"
      "                              fingerprint; corruption degrades to\n"
      "                              recomputing (never wrong bytes).\n"
      "                              `kelpie cache stats|purge --file FILE`\n"
      "                              inspects or deletes it offline\n"
      "  --warm-mimics               on explain/serve: seed every mimic from\n"
      "                              the stored embedding it imitates (warm\n"
      "                              cache entries are salted apart from\n"
      "                              cold ones)\n"
      "  --quant-shortlist           serve filtered ranks through the int8\n"
      "                              candidate sweep with certified error\n"
      "                              bounds and exact re-scoring of the\n"
      "                              uncertain band; ranks, explanations and\n"
      "                              journals are byte-identical with the\n"
      "                              flag on or off (DESIGN.md §15)\n"
      "crash-safe training:\n"
      "  train --checkpoint DIR      atomic CRC-framed checkpoint after each\n"
      "                              epoch (or every --checkpoint-interval\n"
      "                              epochs): parameters, optimizer state,\n"
      "                              RNG stream, recovery ledger\n"
      "  train --resume              restore from DIR and continue; a run\n"
      "                              killed at any point converges to the\n"
      "                              byte-identical model of an\n"
      "                              uninterrupted run. Corrupt or stale\n"
      "                              checkpoints degrade to retraining from\n"
      "                              scratch, never an error.\n"
      "                              SIGINT/SIGTERM finish the epoch, write\n"
      "                              a final checkpoint, exit clean\n"
      "  xp --warm-start DIR         end-to-end retrains resume from the\n"
      "                              checkpointed base state and run\n"
      "                              --warm-epochs N epochs (journals get a\n"
      "                              distinct warm run id)\n"
      "  train --sparse              touched-row sparse optimizer state for\n"
      "                              embedding gradients; byte-identical to\n"
      "                              the dense path, O(touched rows) memory\n"
      "incremental updates:\n"
      "  kelpie update               ingest a KG delta file (lines\n"
      "                              'add<TAB>h<TAB>r<TAB>t' and\n"
      "                              'remove<TAB>h<TAB>r<TAB>t') and re-fit\n"
      "                              only the affected entities' rows from a\n"
      "                              warm start — cost scales with the delta,\n"
      "                              not the graph. --journal makes it crash-\n"
      "                              safe (--resume replays completed rows\n"
      "                              byte-identically); --relevance-cache\n"
      "                              reconciles the post-training cache\n"
      "                              (wholesale on parameter change, dead-key\n"
      "                              GC otherwise)\n"
      "models: TransE ComplEx ConvE DistMult RotatE\n"
      "datasets: FB15k FB15k-237 WN18 WN18RR YAGO3-10\n"
      "observability:\n"
      "  kelpie metrics              Prometheus text exposition of the\n"
      "                              process registry (--json for the\n"
      "                              combined metrics + trace snapshot;\n"
      "                              --demo populates sample series)\n"
      "  --metrics-out FILE          on evaluate/explain/xp: arm the trace\n"
      "                              collector and write the JSON snapshot\n"
      "                              when the command finishes\n"
      "bounded extraction:\n"
      "  --work-budget N             deterministic per-prediction budget in\n"
      "                              work units (1 unit = one post-training);\n"
      "                              same N => same truncated explanation at\n"
      "                              any thread count\n"
      "  --per-prediction-timeout S  wall-clock seconds per extraction\n"
      "                              (not deterministic)\n"
      "  --deadline S                run-level wall-clock deadline (xp)\n"
      "  --retry-truncated           with --resume: re-extract journaled\n"
      "                              predictions a limit truncated\n"
      "  SIGINT/SIGTERM cancel cleanly: the journal keeps every finished\n"
      "  prediction; a second signal exits immediately\n"
      "fault injection (tests):\n"
      "  KELPIE_FAILPOINTS=name[:match[:times]],...  arm failpoints; match\n"
      "  is a value or '*', times a count or 'forever'. Known failpoints:\n"
      "    train.diverge (value = epoch), train.interrupt (value = epoch,\n"
      "    aborts after that epoch's checkpoint — kill -9 stand-in),\n"
      "    engine.post_train.diverge (value = entity id),\n"
      "    pipeline.interrupt (value = prediction index),\n"
      "    atomic_file.partial_write, atomic_file.rename,\n"
      "    cache.partial_write (torn tail), cache.bit_flip (payload\n"
      "    corruption), cache.stale_fingerprint (wrong-model header),\n"
      "    checkpoint.partial_write, checkpoint.bit_flip,\n"
      "    checkpoint.stale_config (checkpoint corruption matrix)\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (const char* spec = std::getenv("KELPIE_FAILPOINTS")) {
    Status status = failpoint::ArmFromSpec(spec);
    if (!status.ok()) return Fail(status.ToString());
  }
  std::string command = argv[1];
  if (command == "cache") {
    if (argc < 3) return Usage();
    Args verb_args(argc, argv, 3);
    if (!verb_args.error().empty()) return Fail(verb_args.error());
    Status status = CmdCache(argv[2], verb_args);
    return status.ok() ? 0 : Fail(status.ToString());
  }
  Args args(argc, argv);
  if (!args.error().empty()) return Fail(args.error());
  // Set before any command constructs EvalOptions / engine options: their
  // quantized_shortlist fields default from this process-wide setting.
  // Byte-identical by design, so the flag only changes speed, never output.
  SetDefaultQuantizedShortlist(args.Has("quant-shortlist"));
  Status status = Status::Ok();
  if (command == "generate") {
    status = CmdGenerate(args);
  } else if (command == "train") {
    status = CmdTrain(args);
  } else if (command == "evaluate") {
    MetricsSink sink(args);
    status = sink.Finish(CmdEvaluate(args));
  } else if (command == "explain") {
    MetricsSink sink(args);
    status = sink.Finish(CmdExplain(args));
  } else if (command == "score") {
    status = CmdScore(args);
  } else if (command == "serve") {
    MetricsSink sink(args);
    status = sink.Finish(CmdServe(args));
  } else if (command == "serve-client") {
    status = CmdServeClient(args);
  } else if (command == "update") {
    status = CmdUpdate(args);
  } else if (command == "audit") {
    status = CmdAudit(args);
  } else if (command == "xp") {
    MetricsSink sink(args);
    status = sink.Finish(CmdXp(args));
  } else if (command == "metrics") {
    status = CmdMetrics(args);
  } else {
    return Usage();
  }
  return status.ok() ? 0 : Fail(status.ToString());
}

}  // namespace
}  // namespace kelpie

int main(int argc, char** argv) { return kelpie::Run(argc, argv); }
