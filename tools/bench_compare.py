#!/usr/bin/env python3
"""Report-only comparison of a bench JSON run against a baseline.

Usage:
    bench_compare.py --baseline bench/baseline.json \
        --current BENCH_kernels.json [--threshold 0.25] [--out report.md]
    bench_compare.py --baseline bench/baseline.json \
        --current BENCH_serve.json [--out report.md]

Sections are matched by key: a bench_kernels run carries "kernels" and
"score_all", a bench_serve run carries "serve"; only the sections present
in --current are reported. Prints a markdown delta table (suitable for
$GITHUB_STEP_SUMMARY) showing the current timing versus the committed
baseline.
Rows whose regression exceeds the threshold are flagged, but the script
ALWAYS exits 0: CI perf numbers on shared runners are too noisy to gate
merges on, so the job surfaces the table and leaves judgement to the
reviewer (EXPERIMENTS.md, "perf-smoke").
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        return None


def fmt_delta(current, base):
    """Relative change as a signed percentage; positive = slower."""
    if base <= 0:
        return "n/a", 0.0
    rel = (current - base) / base
    return f"{rel:+.1%}", rel


def kernel_rows(baseline, current, threshold):
    base_by_key = {
        (k["name"], k["dim"]): k for k in baseline.get("kernels", [])
    }
    rows = []
    for k in current.get("kernels", []):
        key = (k["name"], k["dim"])
        base = base_by_key.get(key)
        if base is None:
            rows.append((f"{k['name']}/{k['dim']}",
                         f"{k['active_ns_per_op']:.1f}", "-", "new", ""))
            continue
        delta, rel = fmt_delta(k["active_ns_per_op"],
                               base["active_ns_per_op"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((f"{k['name']}/{k['dim']}",
                     f"{k['active_ns_per_op']:.1f}",
                     f"{base['active_ns_per_op']:.1f}", delta, flag))
    return rows


def score_all_rows(baseline, current, threshold):
    base_by_model = {
        s["model"]: s for s in baseline.get("score_all", [])
    }
    rows = []
    for s in current.get("score_all", []):
        base = base_by_model.get(s["model"])
        if base is None:
            rows.append((s["model"], f"{s['ns_per_call']:.0f}", "-", "new",
                         ""))
            continue
        delta, rel = fmt_delta(s["ns_per_call"], base["ns_per_call"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((s["model"], f"{s['ns_per_call']:.0f}",
                     f"{base['ns_per_call']:.0f}", delta, flag))
    return rows


def quant_rows(baseline, current, threshold):
    base_by_key = {
        (q["name"], q["dim"]): q for q in baseline.get("quant", [])
    }
    rows = []
    for q in current.get("quant", []):
        key = (q["name"], q["dim"])
        label = f"{q['name']}/{q['dim']}"
        speedup = f"{q['speedup']:.2f}x"
        base = base_by_key.get(key)
        if base is None:
            rows.append((label, f"{q['quant_ns_per_op']:.0f}", "-", "new",
                         speedup, ""))
            continue
        delta, rel = fmt_delta(q["quant_ns_per_op"],
                               base["quant_ns_per_op"])
        # The sweep exists to beat the exact kernel; losing 2x is worth a
        # flag even when the absolute timing did not regress.
        flag = (":warning:" if rel > threshold or q["speedup"] < 2.0
                else "")
        rows.append((label, f"{q['quant_ns_per_op']:.0f}",
                     f"{base['quant_ns_per_op']:.0f}", delta, speedup,
                     flag))
    return rows


def serve_rows(baseline, current, threshold):
    base_by_key = {
        (s["name"], s["pool"]): s for s in baseline.get("serve", [])
    }
    rows = []
    for s in current.get("serve", []):
        key = (s["name"], s["pool"])
        label = f"{s['name']}/pool{s['pool']}"
        base = base_by_key.get(key)
        if base is None:
            rows.append((label, f"{s['ns_per_request']:.0f}", "-", "new",
                         ""))
            continue
        delta, rel = fmt_delta(s["ns_per_request"], base["ns_per_request"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((label, f"{s['ns_per_request']:.0f}",
                     f"{base['ns_per_request']:.0f}", delta, flag))
    return rows


def markdown_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that earns a warning flag")
    parser.add_argument("--out", default=None,
                        help="also append the report to this file")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline is None or current is None:
        # Missing or malformed inputs must not fail the job: report and
        # exit clean.
        print("bench_compare: skipping comparison (see stderr)")
        return 0

    if "serve" in current and "kernels" not in current:
        out = ["## Serve bench vs baseline", ""]
    else:
        out = ["## Kernel bench vs baseline", ""]
    if "kernels" in current:
        cur_backend = current.get("backend", "?")
        base_backend = baseline.get("backend", "?")
        out.append(f"Backend: `{cur_backend}` (baseline: `{base_backend}`)")
        if cur_backend != base_backend:
            out.append("")
            out.append("Backends differ — deltas reflect the backend "
                       "change, not a regression.")
        out.append("")
        out.append(markdown_table(
            ("Kernel/dim", "ns/op", "baseline", "delta", ""),
            kernel_rows(baseline, current, args.threshold)))
        out.append("")
    if "quant" in current:
        out.append("### Quantized shortlist sweep")
        out.append("")
        out.append(markdown_table(
            ("Sweep/dim", "quant ns/op", "baseline", "delta", "vs exact",
             ""),
            quant_rows(baseline, current, args.threshold)))
        out.append("")
    if "score_all" in current:
        out.append("### ScoreAllTails")
        out.append("")
        out.append(markdown_table(
            ("Model", "ns/call", "baseline", "delta", ""),
            score_all_rows(baseline, current, args.threshold)))
        out.append("")
    if "serve" in current:
        out.append("### Serve round-trips")
        out.append("")
        out.append(markdown_table(
            ("Bench/pool", "ns/req", "baseline", "delta", ""),
            serve_rows(baseline, current, args.threshold)))
        out.append("")
    if "warm_cache" in current:
        w = current["warm_cache"]
        base_w = baseline.get("warm_cache")
        base_speedup = (f"{base_w['speedup']:.1f}x"
                        if base_w is not None else "-")
        out.append("### Warm relevance cache (repeated explains)")
        out.append("")
        out.append(markdown_table(
            ("cold ns/req", "warm ns/req", "speedup", "baseline speedup"),
            [(f"{w['cold_ns_per_request']:.0f}",
              f"{w['warm_ns_per_request']:.0f}",
              f"{w['speedup']:.1f}x", base_speedup)]))
        out.append("")
    out.append(f"Rows slower than baseline by more than "
               f"{args.threshold:.0%} are flagged. Report-only: this step "
               f"never fails the build.")
    report = "\n".join(out)

    print(report)
    if args.out:
        with open(args.out, "a") as f:
            f.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
