#!/usr/bin/env python3
"""Comparison of a bench JSON run against a baseline, with an optional gate.

Usage:
    bench_compare.py --baseline bench/baseline.json \
        --current BENCH_kernels.json [--threshold 0.25] \
        [--fail-below 0.85] [--out report.md]
    bench_compare.py --baseline bench/baseline.json \
        --current BENCH_serve.json [--out report.md]
    bench_compare.py --selftest

Sections are matched by key: a bench_kernels run carries "kernels",
"quant" and "score_all", a bench_serve run carries "serve" and
"warm_cache", a bench_sparse_update run carries "sparse_update"; only the
sections present in --current are reported. Prints a markdown delta table
(suitable for $GITHUB_STEP_SUMMARY) showing the current timing versus the
committed baseline.

Gating: with --fail-below R the *ratio* sections — kernels
(active_ns_per_op), quant sweeps (quant_ns_per_op) and the warm-cache
speedup — fail the run (exit 1) when current performance drops below R x
baseline. Those numbers compare two code paths measured in the same
process on the same machine, so runner noise largely cancels and they are
stable enough to gate on. Wall-clock sections (serve round-trips,
score_all, sparse_update, fig5) stay report-only under any flag: absolute
timings on shared runners are too noisy to gate merges on
(EXPERIMENTS.md, "perf-smoke").
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        return None


def fmt_delta(current, base):
    """Relative change as a signed percentage; positive = slower."""
    if base <= 0:
        return "n/a", 0.0
    rel = (current - base) / base
    return f"{rel:+.1%}", rel


class Gate:
    """Collects gated rows whose performance fell below the floor.

    `ratio` is current performance relative to baseline (1.0 = parity,
    smaller = slower). With fail_below=None the gate is inert and the
    script behaves report-only.
    """

    def __init__(self, fail_below):
        self.fail_below = fail_below
        self.failures = []

    def check(self, label, ratio):
        if self.fail_below is None:
            return False
        if ratio < self.fail_below:
            self.failures.append((label, ratio))
            return True
        return False


def kernel_rows(baseline, current, threshold, gate):
    base_by_key = {
        (k["name"], k["dim"]): k for k in baseline.get("kernels", [])
    }
    rows = []
    for k in current.get("kernels", []):
        key = (k["name"], k["dim"])
        base = base_by_key.get(key)
        if base is None:
            rows.append((f"{k['name']}/{k['dim']}",
                         f"{k['active_ns_per_op']:.1f}", "-", "new", ""))
            continue
        delta, rel = fmt_delta(k["active_ns_per_op"],
                               base["active_ns_per_op"])
        label = f"kernels:{k['name']}/{k['dim']}"
        gated = gate.check(label, base["active_ns_per_op"] /
                           k["active_ns_per_op"]
                           if k["active_ns_per_op"] > 0 else 0.0)
        flag = ":x:" if gated else (":warning:" if rel > threshold else "")
        rows.append((f"{k['name']}/{k['dim']}",
                     f"{k['active_ns_per_op']:.1f}",
                     f"{base['active_ns_per_op']:.1f}", delta, flag))
    return rows


def score_all_rows(baseline, current, threshold):
    base_by_model = {
        s["model"]: s for s in baseline.get("score_all", [])
    }
    rows = []
    for s in current.get("score_all", []):
        base = base_by_model.get(s["model"])
        if base is None:
            rows.append((s["model"], f"{s['ns_per_call']:.0f}", "-", "new",
                         ""))
            continue
        delta, rel = fmt_delta(s["ns_per_call"], base["ns_per_call"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((s["model"], f"{s['ns_per_call']:.0f}",
                     f"{base['ns_per_call']:.0f}", delta, flag))
    return rows


def quant_rows(baseline, current, threshold, gate):
    base_by_key = {
        (q["name"], q["dim"]): q for q in baseline.get("quant", [])
    }
    rows = []
    for q in current.get("quant", []):
        key = (q["name"], q["dim"])
        label = f"{q['name']}/{q['dim']}"
        speedup = f"{q['speedup']:.2f}x"
        base = base_by_key.get(key)
        if base is None:
            rows.append((label, f"{q['quant_ns_per_op']:.0f}", "-", "new",
                         speedup, ""))
            continue
        delta, rel = fmt_delta(q["quant_ns_per_op"],
                               base["quant_ns_per_op"])
        gated = gate.check(f"quant:{label}",
                           base["quant_ns_per_op"] / q["quant_ns_per_op"]
                           if q["quant_ns_per_op"] > 0 else 0.0)
        # The sweep exists to beat the exact kernel; losing 2x is worth a
        # flag even when the absolute timing did not regress.
        flag = (":x:" if gated else
                ":warning:" if rel > threshold or q["speedup"] < 2.0
                else "")
        rows.append((label, f"{q['quant_ns_per_op']:.0f}",
                     f"{base['quant_ns_per_op']:.0f}", delta, speedup,
                     flag))
    return rows


def serve_rows(baseline, current, threshold):
    base_by_key = {
        (s["name"], s["pool"]): s for s in baseline.get("serve", [])
    }
    rows = []
    for s in current.get("serve", []):
        key = (s["name"], s["pool"])
        label = f"{s['name']}/pool{s['pool']}"
        base = base_by_key.get(key)
        if base is None:
            rows.append((label, f"{s['ns_per_request']:.0f}", "-", "new",
                         ""))
            continue
        delta, rel = fmt_delta(s["ns_per_request"], base["ns_per_request"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((label, f"{s['ns_per_request']:.0f}",
                     f"{base['ns_per_request']:.0f}", delta, flag))
    return rows


def sparse_update_rows(baseline, current, threshold):
    def key(row):
        return (row["name"], row.get("model", ""), row.get("mode", ""))

    base_by_key = {key(r): r for r in baseline.get("sparse_update", [])}
    rows = []
    for r in current.get("sparse_update", []):
        parts = [r["name"]]
        if r.get("model"):
            parts.append(r["model"])
        if r.get("mode"):
            parts.append(r["mode"])
        label = "/".join(parts)
        extra = (f"{r['updates_per_second']:.0f} upd/s"
                 if "updates_per_second" in r else
                 f"{r.get('speedup_vs_retrain', 0):.1f}x vs retrain")
        base = base_by_key.get(key(r))
        if base is None:
            rows.append((label, f"{r['ms']:.1f}", "-", "new", extra, ""))
            continue
        delta, rel = fmt_delta(r["ms"], base["ms"])
        flag = ":warning:" if rel > threshold else ""
        rows.append((label, f"{r['ms']:.1f}", f"{base['ms']:.1f}", delta,
                     extra, flag))
    return rows


def markdown_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def compare(baseline, current, threshold, fail_below, out_path=None):
    """Renders the report; returns the process exit code."""
    gate = Gate(fail_below)
    if "serve" in current and "kernels" not in current:
        out = ["## Serve bench vs baseline", ""]
    elif "sparse_update" in current and "kernels" not in current:
        out = ["## Sparse-update bench vs baseline", ""]
    else:
        out = ["## Kernel bench vs baseline", ""]
    if "kernels" in current:
        cur_backend = current.get("backend", "?")
        base_backend = baseline.get("backend", "?")
        out.append(f"Backend: `{cur_backend}` (baseline: `{base_backend}`)")
        if cur_backend != base_backend:
            out.append("")
            out.append("Backends differ — deltas reflect the backend "
                       "change, not a regression.")
        out.append("")
        out.append(markdown_table(
            ("Kernel/dim", "ns/op", "baseline", "delta", ""),
            kernel_rows(baseline, current, threshold, gate)))
        out.append("")
    if "quant" in current:
        out.append("### Quantized shortlist sweep")
        out.append("")
        out.append(markdown_table(
            ("Sweep/dim", "quant ns/op", "baseline", "delta", "vs exact",
             ""),
            quant_rows(baseline, current, threshold, gate)))
        out.append("")
    if "score_all" in current:
        out.append("### ScoreAllTails")
        out.append("")
        out.append(markdown_table(
            ("Model", "ns/call", "baseline", "delta", ""),
            score_all_rows(baseline, current, threshold)))
        out.append("")
    if "serve" in current:
        out.append("### Serve round-trips")
        out.append("")
        out.append(markdown_table(
            ("Bench/pool", "ns/req", "baseline", "delta", ""),
            serve_rows(baseline, current, threshold)))
        out.append("")
    if "warm_cache" in current:
        w = current["warm_cache"]
        base_w = baseline.get("warm_cache")
        base_speedup = (f"{base_w['speedup']:.1f}x"
                        if base_w is not None else "-")
        gated = False
        if base_w is not None and base_w.get("speedup", 0) > 0:
            gated = gate.check("warm_cache:speedup",
                               w["speedup"] / base_w["speedup"])
        out.append("### Warm relevance cache (repeated explains)")
        out.append("")
        out.append(markdown_table(
            ("cold ns/req", "warm ns/req", "speedup", "baseline speedup",
             ""),
            [(f"{w['cold_ns_per_request']:.0f}",
              f"{w['warm_ns_per_request']:.0f}",
              f"{w['speedup']:.1f}x", base_speedup,
              ":x:" if gated else "")]))
        out.append("")
    if "sparse_update" in current:
        out.append("### Sparse optimizer path & incremental updates")
        out.append("")
        out.append(markdown_table(
            ("Bench", "ms", "baseline", "delta", "throughput", ""),
            sparse_update_rows(baseline, current, threshold)))
        out.append("")
    out.append(f"Rows slower than baseline by more than "
               f"{threshold:.0%} are flagged :warning:.")
    if fail_below is not None:
        out.append(f"Gated sections (kernels, quant sweeps, warm-cache "
                   f"speedup) fail the job below {fail_below:.0%} of "
                   f"baseline performance; wall-clock sections stay "
                   f"report-only.")
        if gate.failures:
            out.append("")
            out.append("**Perf gate failed:**")
            for label, ratio in gate.failures:
                out.append(f"- `{label}` at {ratio:.0%} of baseline "
                           f"(floor {fail_below:.0%})")
    else:
        out.append("Report-only: this step never fails the build.")
    report = "\n".join(out)

    print(report)
    if out_path:
        with open(out_path, "a") as f:
            f.write(report + "\n")
    if gate.failures:
        print(f"bench_compare: perf gate failed for "
              f"{len(gate.failures)} row(s)", file=sys.stderr)
        return 1
    return 0


def selftest():
    """Proves the --fail-below gate produces a nonzero exit on a synthetic
    regression and stays green at parity. Run by ctest
    (bench_compare_selftest) so the gating path itself is covered by
    tier-1."""
    baseline = {
        "backend": "avx2",
        "kernels": [
            {"name": "dot", "dim": 64, "active_ns_per_op": 10.0,
             "scalar_ns_per_op": 50.0, "speedup": 5.0},
        ],
        "quant": [
            {"name": "quant_dot_sweep", "rows": 100, "dim": 128,
             "exact_ns_per_op": 400.0, "quant_ns_per_op": 100.0,
             "speedup": 4.0},
        ],
        "warm_cache": {"cold_ns_per_request": 1000.0,
                       "warm_ns_per_request": 100.0, "speedup": 10.0},
    }

    def run(current, fail_below):
        return compare(baseline, current, threshold=0.25,
                       fail_below=fail_below)

    failures = []

    # Parity: identical numbers pass under the gate.
    if run(baseline, 0.85) != 0:
        failures.append("parity run failed the gate")

    # A 30% kernel slowdown (performance 77% of baseline) must fail.
    slow_kernel = json.loads(json.dumps(baseline))
    slow_kernel["kernels"][0]["active_ns_per_op"] = 13.0
    if run(slow_kernel, 0.85) == 0:
        failures.append("kernel regression passed the gate")
    # ...but stays report-only without --fail-below.
    if run(slow_kernel, None) != 0:
        failures.append("report-only run exited nonzero")

    # A quant-sweep regression must fail.
    slow_quant = json.loads(json.dumps(baseline))
    slow_quant["quant"][0]["quant_ns_per_op"] = 150.0
    if run(slow_quant, 0.85) == 0:
        failures.append("quant regression passed the gate")

    # A collapsed warm-cache speedup must fail.
    cold_cache = json.loads(json.dumps(baseline))
    cold_cache["warm_cache"]["speedup"] = 2.0
    if run(cold_cache, 0.85) == 0:
        failures.append("warm-cache collapse passed the gate")

    # Wall-clock sections never gate: a serve regression under the flag
    # still exits 0.
    slow_serve = {
        "serve": [{"name": "score_roundtrip", "pool": 1,
                   "ns_per_request": 99999.0,
                   "requests_per_second": 10}],
    }
    serve_base = {"serve": [{"name": "score_roundtrip", "pool": 1,
                             "ns_per_request": 700.0,
                             "requests_per_second": 1400000}]}
    if compare(serve_base, slow_serve, 0.25, 0.85) != 0:
        failures.append("wall-clock serve section was gated")

    for f in failures:
        print(f"selftest: FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    print("selftest: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that earns a warning flag")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="RATIO",
                        help="exit 1 when a gated section's performance "
                             "drops below RATIO x baseline (CI passes "
                             "0.85); omit for report-only")
    parser.add_argument("--out", default=None,
                        help="also append the report to this file")
    parser.add_argument("--selftest", action="store_true",
                        help="exercise the gate logic on synthetic data "
                             "and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --selftest)")

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline is None or current is None:
        # Missing or malformed inputs must not fail the job: report and
        # exit clean. (An absent bench output means the bench step itself
        # failed, which is already red.)
        print("bench_compare: skipping comparison (see stderr)")
        return 0

    return compare(baseline, current, args.threshold, args.fail_below,
                   args.out)


if __name__ == "__main__":
    sys.exit(main())
