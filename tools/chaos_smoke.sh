#!/usr/bin/env bash
# chaos-smoke: fault-injection end-to-end check of the relevance cache and
# the serving layer's resilience (EXPERIMENTS.md, "chaos-smoke").
#
#   1. Generates a toy dataset, trains a TransE model, and records the
#      reference `explain --canonical` bytes with no cache.
#   2. Replays the same explain with the persistent relevance cache cold,
#      warm, and after every corruption failpoint (torn tail, bit flip,
#      stale fingerprint, crashed atomic write) — every run must produce
#      byte-identical output and exit 0: corruption is a cache miss, never
#      an error.
#   3. Inspects the corrupted files with `kelpie cache stats` and purges
#      with `kelpie cache purge` (idempotent).
#   4. Crash-safe training: a checkpointed run killed with SIGKILL at
#      seeded-random points (plus a deterministic `train.interrupt`
#      failpoint round) and resumed with `--resume` converges to a model
#      file byte-identical to an uninterrupted run; every checkpoint
#      corruption failpoint (partial write, bit flip, stale config)
#      degrades to retraining from scratch with the same bytes; SIGTERM
#      drains the in-flight epoch, flushes a final checkpoint, and the
#      resume completes byte-identically.
#   5. Incremental updates: a `kelpie update` killed with SIGKILL
#      mid-run and re-run with `--resume` over its journal converges to a
#      model byte-identical to an uninterrupted update (the journal's
#      verified prefix replays, the rest recomputes); a corrupted delta
#      file fails cleanly with a named InvalidArgument status and a
#      nonzero exit, leaving the model untouched; the relevance cache is
#      reconciled (wholesale invalidation when parameters changed).
#   6. Serve resilience: health answers "ready" (and reports the
#      warm-mimics state); a pipelined shutdown+health answers "draining";
#      the server drains buffered work and exits 0 on SIGTERM; a shedding
#      server (queue depth 1) is absorbed by serve-client retries (exit 0,
#      every response ok); a dead endpoint exhausts retries into
#      per-request error lines and a nonzero exit.
#
# Usage: tools/chaos_smoke.sh [path/to/kelpie]
set -euo pipefail

KELPIE="${1:-build/tools/kelpie}"
WORK="$(mktemp -d /tmp/kelpie_chaos_smoke.XXXXXX)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos-smoke: FAIL: $1" >&2
  echo "--- serve log ---" >&2
  cat "$WORK/serve.log" >&2 || true
  exit 1
}

echo "== generate + train toy model"
"$KELPIE" generate --dataset FB15k-237 --scale 0.4 --seed 7 \
  --out "$WORK/data"
"$KELPIE" train --data "$WORK/data" --model TransE --seed 42 \
  --epochs 40 --dim 32 --out "$WORK/model.bin"

HEAD=Person_8
REL=nationality
TAIL=Country_4
CACHE="$WORK/relevance.kelprc"

explain_canonical() {  # $1 = output file, extra args follow
  local out="$1"; shift
  "$KELPIE" explain --data "$WORK/data" --model-file "$WORK/model.bin" \
    --head "$HEAD" --relation "$REL" --tail "$TAIL" \
    --canonical --id 3 "$@" > "$out" \
    || fail "explain exited non-zero ($*)"
}

echo "== reference bytes (no cache)"
explain_canonical "$WORK/reference.txt"

echo "== cold cache run"
explain_canonical "$WORK/cold.txt" --relevance-cache "$CACHE"
diff -u "$WORK/reference.txt" "$WORK/cold.txt" \
  || fail "cold cache changed the explanation bytes"
[ -s "$CACHE" ] || fail "cold run did not write the cache file"

echo "== warm cache run"
explain_canonical "$WORK/warm.txt" --relevance-cache "$CACHE"
diff -u "$WORK/reference.txt" "$WORK/warm.txt" \
  || fail "warm cache changed the explanation bytes"
"$KELPIE" cache stats --file "$CACHE" > "$WORK/stats_warm.txt"
grep -Eq 'header +ok' "$WORK/stats_warm.txt" \
  || fail "warm cache header not ok: $(cat "$WORK/stats_warm.txt")"
grep -Eq 'torn tail +no' "$WORK/stats_warm.txt" \
  || fail "warm cache unexpectedly torn"

echo "== corruption matrix: every failpoint recovers to identical bytes"
# Each round: one run with the failpoint armed leaves a damaged file
# behind (the explanation itself must already be unaffected), then an
# unarmed run loads the damage, recovers, and rewrites a clean file.
for fp in cache.partial_write cache.bit_flip 'cache.stale_fingerprint:*:forever'; do
  name="${fp%%:*}"
  echo "   -- $name"
  KELPIE_FAILPOINTS="$fp" \
    explain_canonical "$WORK/inject_$name.txt" --relevance-cache "$CACHE"
  diff -u "$WORK/reference.txt" "$WORK/inject_$name.txt" \
    || fail "$name: bytes changed during the injection run"
  "$KELPIE" cache stats --file "$CACHE" > "$WORK/stats_$name.txt" \
    || fail "$name: cache stats failed on the damaged file"
  explain_canonical "$WORK/recover_$name.txt" --relevance-cache "$CACHE"
  diff -u "$WORK/reference.txt" "$WORK/recover_$name.txt" \
    || fail "$name: bytes changed after recovery"
done
grep -Eq 'torn tail +yes' "$WORK/stats_cache.partial_write.txt" \
  || fail "partial_write left no torn tail: $(cat "$WORK/stats_cache.partial_write.txt")"
grep -Eq 'corrupt +1' "$WORK/stats_cache.bit_flip.txt" \
  || fail "bit_flip left no corrupt entry: $(cat "$WORK/stats_cache.bit_flip.txt")"

echo "== crashed atomic write keeps the previous file"
BEFORE="$(wc -c < "$CACHE")"
KELPIE_FAILPOINTS=atomic_file.partial_write \
  explain_canonical "$WORK/crash.txt" --relevance-cache "$CACHE"
diff -u "$WORK/reference.txt" "$WORK/crash.txt" \
  || fail "crashed flush changed the explanation bytes"
AFTER="$(wc -c < "$CACHE")"
[ "$BEFORE" = "$AFTER" ] \
  || fail "crashed flush altered the cache file ($BEFORE -> $AFTER bytes)"

echo "== cache purge is idempotent"
"$KELPIE" cache purge --file "$CACHE" || fail "purge failed"
[ ! -e "$CACHE" ] || fail "purge left the cache file behind"
"$KELPIE" cache purge --file "$CACHE" || fail "second purge failed"

# --- crash-safe training -------------------------------------------------

# A schedule long enough that signals land mid-train; the golden bytes are
# the uninterrupted run's.
CRASH_EPOCHS=2000
CKPT="$WORK/ckpt"
train_crashable() {  # $1 = output model, extra args follow
  local out="$1"; shift
  "$KELPIE" train --data "$WORK/data" --model TransE --seed 42 \
    --epochs "$CRASH_EPOCHS" --dim 32 --out "$out" "$@"
}
train_crashable_bg() {  # $1 = log file, $2 = output model, extra args follow
  # The & lives here so TRAIN_PID is the kelpie binary itself, not a bash
  # subshell wrapping it — killing the wrapper would orphan the trainer,
  # which keeps writing checkpoints (the start_serve helper has the same
  # shape for the same reason).
  local log="$1" out="$2"; shift 2
  "$KELPIE" train --data "$WORK/data" --model TransE --seed 42 \
    --epochs "$CRASH_EPOCHS" --dim 32 --out "$out" "$@" \
    > "$log" 2>&1 &
  TRAIN_PID=$!
}

echo "== train: checkpointing changes no bytes"
train_crashable "$WORK/crash_ref.bin" \
  || fail "uninterrupted reference train failed"
train_crashable "$WORK/crash_ckpt.bin" --checkpoint "$CKPT" \
  || fail "checkpointed train failed"
cmp -s "$WORK/crash_ref.bin" "$WORK/crash_ckpt.bin" \
  || fail "checkpointed train produced different bytes"

echo "== train: SIGKILL + --resume converges byte-identically"
rm -rf "$CKPT"
# Seeded LCG: the kill times are random-looking but reproducible, so a
# failing round can be replayed.
LCG=987654321
for round in 1 2 3; do
  LCG=$(( (LCG * 1103515245 + 12345) % 2147483648 ))
  DELAY="0.$(( 100 + LCG % 700 ))"  # 0.100s .. 0.799s
  train_crashable_bg "$WORK/kill_$round.log" "$WORK/crash_out.bin" \
    --checkpoint "$CKPT" --resume
  sleep "$DELAY"
  kill -9 "$TRAIN_PID" 2>/dev/null || true
  wait "$TRAIN_PID" 2>/dev/null || true
  echo "   -- round $round: SIGKILL after ${DELAY}s"
done
train_crashable "$WORK/crash_resumed.bin" --checkpoint "$CKPT" --resume \
  || fail "final resume failed"
cmp -s "$WORK/crash_ref.bin" "$WORK/crash_resumed.bin" \
  || fail "kill-resume model differs from the uninterrupted run"

echo "== train: deterministic interrupt failpoint + --resume"
rm -rf "$CKPT"
if KELPIE_FAILPOINTS=train.interrupt:500 \
    train_crashable /dev/null --checkpoint "$CKPT" 2> /dev/null; then
  fail "train.interrupt armed but train exited 0"
fi
train_crashable "$WORK/crash_fp.bin" --checkpoint "$CKPT" --resume \
  > "$WORK/fp_resume.log" \
  || fail "resume after failpoint interrupt failed"
grep -q 'resumed from checkpoint at epoch 501' "$WORK/fp_resume.log" \
  || fail "resume did not pick up at the interrupt epoch: $(cat "$WORK/fp_resume.log")"
cmp -s "$WORK/crash_ref.bin" "$WORK/crash_fp.bin" \
  || fail "failpoint-resume model differs from the uninterrupted run"

echo "== train: checkpoint corruption degrades to scratch, same bytes"
for fp in checkpoint.partial_write checkpoint.bit_flip \
          checkpoint.stale_config; do
  echo "   -- $fp"
  rm -rf "$CKPT"
  if KELPIE_FAILPOINTS="train.interrupt:500,$fp:*:forever" \
      train_crashable /dev/null --checkpoint "$CKPT" 2> /dev/null; then
    fail "$fp: interrupt armed but train exited 0"
  fi
  train_crashable "$WORK/crash_$fp.bin" --checkpoint "$CKPT" --resume \
    > "$WORK/corrupt_$fp.log" \
    || fail "$fp: resume over a damaged checkpoint exited non-zero"
  grep -q 'trained from scratch' "$WORK/corrupt_$fp.log" \
    || fail "$fp: damaged checkpoint was not degraded to scratch: $(cat "$WORK/corrupt_$fp.log")"
  cmp -s "$WORK/crash_ref.bin" "$WORK/crash_$fp.bin" \
    || fail "$fp: degraded run produced different bytes"
done

echo "== train: SIGTERM drains, checkpoints, resumes byte-identically"
rm -rf "$CKPT"
train_crashable_bg "$WORK/drain_train.log" "$WORK/drain_out.bin" \
  --checkpoint "$CKPT"
sleep 0.4
kill -TERM "$TRAIN_PID"
if wait "$TRAIN_PID"; then
  fail "drained train exited 0 (expected the Cancelled exit)"
fi
grep -q 'completeness: Cancelled' "$WORK/drain_train.log" \
  || fail "drained train did not report Cancelled: $(cat "$WORK/drain_train.log")"
[ -s "$CKPT/train.ckpt" ] || fail "drained train left no checkpoint"
train_crashable "$WORK/drain_resumed.bin" --checkpoint "$CKPT" --resume \
  || fail "resume after drain failed"
cmp -s "$WORK/crash_ref.bin" "$WORK/drain_resumed.bin" \
  || fail "drain-resume model differs from the uninterrupted run"

DELTA="$WORK/delta.tsv"
UPD_JOURNAL="$WORK/update.jnl"
run_update() {  # $1 = output model, extra args follow
  local out="$1"; shift
  "$KELPIE" update --data "$WORK/data" --model-file "$WORK/model.bin" \
    --delta "$DELTA" --seed 5 --out "$out" "$@"
}

echo "== update: reference incremental update"
# Remove the first two training facts verbatim; the TSV fields carry over.
head -2 "$WORK/data/train.txt" | sed 's/^/remove\t/' > "$DELTA"
run_update "$WORK/updated_ref.bin" > "$WORK/update_ref.log" \
  || fail "reference update failed"
grep -q 'applied' "$WORK/update_ref.log" \
  || fail "update did not report the applied delta: $(cat "$WORK/update_ref.log")"

echo "== update: SIGKILL mid-update + --resume converges byte-identically"
run_update "$WORK/updated_kill.bin" --journal "$UPD_JOURNAL" \
  > "$WORK/update_kill.log" 2>&1 &
UPD_PID=$!
sleep 0.05
kill -9 "$UPD_PID" 2>/dev/null || true
wait "$UPD_PID" 2>/dev/null || true
# A journal means the kill landed mid-run: resume replays its verified
# prefix. No journal means the run already finished (and spent it) —
# rerunning recomputes everything; order-independence makes both paths
# land on the same bytes.
RESUME_FLAG=""
[ -f "$UPD_JOURNAL" ] && RESUME_FLAG="--resume"
run_update "$WORK/updated_kill.bin" --journal "$UPD_JOURNAL" $RESUME_FLAG \
  > "$WORK/update_resume.log" \
  || fail "update resume after SIGKILL failed"
cmp -s "$WORK/updated_ref.bin" "$WORK/updated_kill.bin" \
  || fail "kill-resume update differs from the uninterrupted update"
[ -f "$UPD_JOURNAL" ] && fail "completed update left its journal behind"

echo "== update: corrupted delta fails cleanly with a named status"
MODEL_SUM="$(cksum "$WORK/model.bin")"
printf 'frobnicate\tPerson_8\tnationality\tCountry_4\n' > "$WORK/bad_delta.tsv"
if "$KELPIE" update --data "$WORK/data" --model-file "$WORK/model.bin" \
    --delta "$WORK/bad_delta.tsv" --out "$WORK/bad_out.bin" \
    2> "$WORK/bad_delta.err"; then
  fail "corrupted delta exited 0"
fi
grep -q 'InvalidArgument' "$WORK/bad_delta.err" \
  || fail "corrupted delta did not fail with InvalidArgument: $(cat "$WORK/bad_delta.err")"
head -c 64 /dev/urandom > "$WORK/bad_delta2.tsv"
if "$KELPIE" update --data "$WORK/data" --model-file "$WORK/model.bin" \
    --delta "$WORK/bad_delta2.tsv" --out "$WORK/bad_out.bin" \
    2> "$WORK/bad_delta2.err"; then
  fail "binary-garbage delta exited 0"
fi
grep -q 'InvalidArgument' "$WORK/bad_delta2.err" \
  || fail "binary-garbage delta did not fail with InvalidArgument: $(cat "$WORK/bad_delta2.err")"
[ -f "$WORK/bad_out.bin" ] && fail "failed update wrote an output model"
[ "$MODEL_SUM" = "$(cksum "$WORK/model.bin")" ] \
  || fail "failed update modified the input model"

echo "== update: relevance cache is reconciled"
# Warm a fresh cache against the pre-update model, then reconcile it
# through the update (the params change, so it invalidates wholesale).
explain_canonical "$WORK/update_cache_warm.txt" \
  --relevance-cache "$WORK/update_cache.kelprc"
[ -s "$WORK/update_cache.kelprc" ] || fail "warm-up did not write the cache"
run_update "$WORK/updated_cache.bin" \
  --relevance-cache "$WORK/update_cache.kelprc" \
  > "$WORK/update_cache.log" \
  || fail "update with --relevance-cache failed"
grep -q 'relevance cache:' "$WORK/update_cache.log" \
  || fail "update did not report cache reconciliation: $(cat "$WORK/update_cache.log")"
cmp -s "$WORK/updated_ref.bin" "$WORK/updated_cache.bin" \
  || fail "cache reconciliation changed the updated model bytes"

start_serve() {  # extra serve flags follow
  : > "$WORK/serve.log"
  "$KELPIE" serve --data "$WORK/data" --model-file "$WORK/model.bin" \
    --port 0 "$@" > "$WORK/serve.log" &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^serving on [^:]*:\([0-9]*\).*/\1/p' "$WORK/serve.log")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.2
  done
  [ -n "$PORT" ] || fail "server did not announce a port"
}

echo "== serve: health, drain via shutdown, warm cache across requests"
start_serve --pool 2 --threads 2 --relevance-cache "$CACHE"
echo '{"id":1,"op":"health"}' | \
  "$KELPIE" serve-client --port "$PORT" > "$WORK/health.txt"
grep -q '"state":"ready"' "$WORK/health.txt" \
  || fail "health did not answer ready: $(cat "$WORK/health.txt")"
grep -q '"warm_mimics":false' "$WORK/health.txt" \
  || fail "health did not report the (cold) warm-mimics state: $(cat "$WORK/health.txt")"
cat > "$WORK/explains.txt" <<EOF
{"id":2,"op":"explain","head":"$HEAD","relation":"$REL","tail":"$TAIL"}
{"id":3,"op":"explain","head":"$HEAD","relation":"$REL","tail":"$TAIL"}
EOF
"$KELPIE" serve-client --port "$PORT" --in "$WORK/explains.txt" \
  > "$WORK/served_explains.txt"
# Both served lines (cold then cache-warm) must match the one-shot bytes
# (the reference carries id 3; normalize the served ids before diffing).
sed 's/"id":2/"id":3/' "$WORK/served_explains.txt" | sort -u \
  > "$WORK/served_unique.txt"
[ "$(wc -l < "$WORK/served_unique.txt")" = "1" ] \
  || fail "repeated served explains differ from each other"
diff -u "$WORK/reference.txt" "$WORK/served_unique.txt" \
  || fail "served explain differs from one-shot bytes"
# Pipelined shutdown+health on one connection: the drain finishes buffered
# lines, so the health line gets an answer — and it must say draining.
printf '{"id":8,"op":"shutdown"}\n{"id":9,"op":"health"}\n' | \
  "$KELPIE" serve-client --port "$PORT" > "$WORK/drain.txt"
grep -q '"id":9.*"state":"draining"' "$WORK/drain.txt" \
  || fail "health during drain did not answer draining: $(cat "$WORK/drain.txt")"
wait "$SERVE_PID" || fail "server exited non-zero after shutdown drain"
SERVE_PID=""
[ -s "$CACHE" ] || fail "server did not flush the relevance cache on stop"

echo "== serve: warm-mimics mode is reported by health"
start_serve --pool 1 --warm-mimics
echo '{"id":1,"op":"health"}' | \
  "$KELPIE" serve-client --port "$PORT" > "$WORK/health_warm.txt"
grep -q '"warm_mimics":true' "$WORK/health_warm.txt" \
  || fail "health did not report warm mimics: $(cat "$WORK/health_warm.txt")"
echo '{"id":2,"op":"shutdown"}' | \
  "$KELPIE" serve-client --port "$PORT" > /dev/null
wait "$SERVE_PID" || fail "warm server exited non-zero after shutdown"
SERVE_PID=""

echo "== serve: SIGTERM drains and exits 0"
start_serve --pool 1
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "server exited non-zero on SIGTERM"
SERVE_PID=""
grep -q 'serve stopped' "$WORK/serve.log" \
  || fail "server did not report a clean stop"

echo "== serve-client: retries absorb admission shedding"
start_serve --pool 1 --max-queue 1 --threads 1
: > "$WORK/burst.txt"
for i in $(seq 1 16); do
  echo "{\"id\":$i,\"op\":\"explain\",\"head\":\"$HEAD\",\"relation\":\"$REL\",\"tail\":\"$TAIL\"}" \
    >> "$WORK/burst.txt"
done
"$KELPIE" serve-client --port "$PORT" --connections 8 --retries 10 \
  --retry-backoff 0.02 --in "$WORK/burst.txt" \
  > "$WORK/burst_responses.txt" 2> "$WORK/burst_err.txt" \
  || fail "retrying client exited non-zero: $(cat "$WORK/burst_err.txt")"
[ "$(grep -c '"ok":true' "$WORK/burst_responses.txt")" = "16" ] \
  || fail "not every burst request succeeded after retries"
echo '{"id":99,"op":"shutdown"}' | \
  "$KELPIE" serve-client --port "$PORT" > /dev/null
wait "$SERVE_PID" || fail "server exited non-zero"
SERVE_PID=""

echo "== serve-client: a dead endpoint exhausts retries into error lines"
set +e
echo '{"id":1,"op":"ping"}' | \
  "$KELPIE" serve-client --port "$PORT" --retries 1 --retry-backoff 0.01 \
  > "$WORK/dead.txt" 2> "$WORK/dead_err.txt"
DEAD_RC=$?
set -e
[ "$DEAD_RC" -ne 0 ] || fail "client exited 0 against a dead endpoint"
grep -q '"id":1.*"ok":false.*"code":"Unavailable"' "$WORK/dead.txt" \
  || fail "no per-request error line for the dead endpoint: $(cat "$WORK/dead.txt")"

echo "chaos-smoke: OK"
